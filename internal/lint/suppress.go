package lint

import (
	"go/token"
	"strings"
)

// allowDirective is one parsed //ncsw:allow comment.
type allowDirective struct {
	pos      token.Pos
	analyzer string // the analyzer being silenced
	reason   string // mandatory justification
	bad      string // non-empty when the directive is malformed
}

// directivePrefix is the comment marker that suppresses one finding.
// Full form:
//
//	//ncsw:allow <analyzer> <reason>
//
// placed on the flagged line or the line immediately above it. The
// reason is not optional: an unexplained suppression is itself a
// finding.
const directivePrefix = "ncsw:allow"

// parseDirectives extracts every //ncsw:allow directive in pkg:
// an index keyed by file and line for suppression lookup, plus the
// directives in source order (files as parsed, comments as written) —
// the deterministic order malformed-directive findings are emitted in.
func parseDirectives(pkg *Package, known map[string]bool) (map[string]map[int]*allowDirective, []*allowDirective) {
	out := map[string]map[int]*allowDirective{}
	var ordered []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				d := &allowDirective{pos: c.Pos()}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.bad = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "missing reason — say why the invariant does not apply here"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.bad == "" && !known[d.analyzer] {
					d.bad = "unknown analyzer " + quote(d.analyzer)
				}
				p := pkg.Fset.Position(c.Pos())
				byLine := out[p.Filename]
				if byLine == nil {
					byLine = map[int]*allowDirective{}
					out[p.Filename] = byLine
				}
				byLine[p.Line] = d
				ordered = append(ordered, d)
			}
		}
	}
	return out, ordered
}

// quote wraps a directive token for an error message.
func quote(s string) string { return "\"" + s + "\"" }

// applySuppressions filters diags through the package's //ncsw:allow
// directives: a finding on the directive's line or the line below it
// is dropped. Malformed directives are converted into findings of
// their own (attributed to the "ncsw-vet" driver), so a typoed or
// reasonless suppression cannot silently disable a gate.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	dirs, ordered := parseDirectives(pkg, known)
	var out []Diagnostic
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if byLine := dirs[p.Filename]; byLine != nil {
			if dir := suppressorFor(byLine, p.Line, d.Analyzer); dir != nil {
				continue
			}
		}
		out = append(out, d)
	}
	for _, dir := range ordered {
		if dir.bad != "" {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "ncsw-vet",
				Message:  "malformed //" + directivePrefix + " directive: " + dir.bad,
			})
		}
	}
	return out
}

// suppressorFor returns the directive covering a finding by analyzer
// name on the given line: same line (trailing comment) or the line
// above (standalone comment). Malformed directives never suppress.
func suppressorFor(byLine map[int]*allowDirective, line int, analyzer string) *allowDirective {
	for _, l := range [2]int{line, line - 1} {
		if dir := byLine[l]; dir != nil && dir.bad == "" && dir.analyzer == analyzer {
			return dir
		}
	}
	return nil
}
