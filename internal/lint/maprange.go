package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Maprange reports `for ... range` over a map whose body performs
// ordering-sensitive work. Go randomizes map iteration order on
// purpose, so anything the loop emits, appends, dispatches or
// last-write-wins assigns varies run to run — the exact class of bug
// the byte-identical benchmark gate exists to catch (DESIGN.md §4).
//
// The analyzer classifies the body statement by statement. Safe,
// order-insensitive constructs:
//
//   - commutative accumulation into integers (x += n, x++, x |= b …);
//     float and string accumulation is NOT safe — float rounding and
//     string concatenation both depend on iteration order
//   - keyed writes into another map, and delete()
//   - collecting keys for later sorting: keys = append(keys, k)
//   - local bindings, conditionals and switches built from the above
//
// Everything else — calls (emission, dispatch, scoring), appends of
// values, sends, plain assignment to variables declared outside the
// loop, early return/break — is reported. The fix is almost always to
// iterate a sorted key slice instead; where the body is provably
// commutative (e.g. a pure float sum a test pins), suppress with
// //ncsw:allow maprange <reason>. Test files are exempt.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "flag ordering-sensitive work inside map iteration — sort the keys first",
	Run: func(pass *Pass) {
		if !isInternalPkg(pass.Path) {
			return
		}
		for _, f := range pass.Files {
			if isTestFile(pass.Filename(f.Pos())) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := underlying(t).(*types.Map); !isMap {
					return true
				}
				c := &mapRangeCheck{pass: pass, rs: rs}
				c.stmts(rs.Body.List)
				if c.reason != "" {
					pass.Reportf(rs.Pos(), "map iteration order is randomized and this body is ordering-sensitive (%s) — iterate over sorted keys", c.reason)
				}
				return true
			})
		}
	},
}

// mapRangeCheck classifies one map-range body. It records the first
// ordering-sensitive construct found; one diagnostic per loop is
// enough to drive the rewrite.
type mapRangeCheck struct {
	pass   *Pass
	rs     *ast.RangeStmt
	reason string
}

// sensitive records the first offending construct.
func (c *mapRangeCheck) sensitive(format string, args ...any) {
	if c.reason == "" {
		c.reason = fmt.Sprintf(format, args...)
	}
}

// stmts classifies a statement list.
func (c *mapRangeCheck) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
		if c.reason != "" {
			return
		}
	}
}

// stmt classifies one statement.
func (c *mapRangeCheck) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// Counters commute.
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.DeclStmt:
		// Local declarations only bind names; initializer calls are
		// caught below.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		c.expr(s.Cond)
		c.stmts(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
		if s.Init != nil {
			c.stmt(s.Init)
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.expr(e)
				}
				c.stmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body)
			}
		}
	case *ast.ForStmt, *ast.RangeStmt:
		// Nested loops get their own inspection when they range over a
		// map; classify their bodies here all the same.
		switch l := s.(type) {
		case *ast.ForStmt:
			if l.Init != nil {
				c.stmt(l.Init)
			}
			if l.Cond != nil {
				c.expr(l.Cond)
			}
			if l.Post != nil {
				c.stmt(l.Post)
			}
			c.stmts(l.Body.List)
		case *ast.RangeStmt:
			c.expr(l.X)
			c.stmts(l.Body.List)
		}
	case *ast.SendStmt:
		c.sensitive("channel send")
	case *ast.ReturnStmt:
		c.sensitive("early return picks whichever key iterates first")
	case *ast.BranchStmt:
		if s.Tok == token.BREAK {
			c.sensitive("break exits after an order-dependent prefix")
		}
	case *ast.GoStmt:
		c.sensitive("goroutine launch")
	case *ast.DeferStmt:
		c.sensitive("deferred call")
	case *ast.EmptyStmt, *ast.LabeledStmt:
		if ls, ok := s.(*ast.LabeledStmt); ok {
			c.stmt(ls.Stmt)
		}
	default:
		c.sensitive("statement %T", s)
	}
}

// assign classifies an assignment statement.
func (c *mapRangeCheck) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE:
		// Binding locals is safe; their initializers may not be.
		for _, r := range s.Rhs {
			c.expr(r)
		}
	case token.ASSIGN:
		for i, l := range s.Lhs {
			var r ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				r = s.Rhs[i]
			}
			c.plainAssign(l, r)
		}
		for _, r := range s.Rhs {
			c.expr(r)
		}
	default:
		// Compound assignment: commutative only over integers. Float
		// accumulation reassociates rounding error with iteration
		// order; string += concatenates in iteration order.
		for _, l := range s.Lhs {
			if !c.safeWriteTarget(l) && !c.integer(l) {
				c.sensitive("%s accumulation into %s is order-dependent for non-integer types", s.Tok, exprString(l))
			}
		}
		for _, r := range s.Rhs {
			c.expr(r)
		}
	}
}

// plainAssign classifies `lhs = rhs`: writes into loop-local
// variables (fields and dereferences included) and keyed map/slice
// element writes are safe, as is the idempotent flag idiom `found =
// true` (a constant written on every iteration lands on the same
// value in any order). A non-constant plain write to a variable that
// outlives the loop is last-write-wins.
func (c *mapRangeCheck) plainAssign(lhs, rhs ast.Expr) {
	if isBlank(lhs) || c.safeWriteTarget(lhs) {
		return
	}
	if rhs != nil {
		if tv, ok := c.pass.Info.Types[rhs]; ok && tv.Value != nil {
			return // constant: every iteration writes the same value
		}
	}
	if c.keyAppend(lhs, rhs) || c.selfMinMax(lhs, rhs) {
		return
	}
	c.sensitive("last-write-wins assignment to %s", exprString(lhs))
}

// selfMinMax recognizes the commutative fold x = min(x, …) /
// x = max(x, …): the extremum of a set does not depend on the order
// the set is visited in.
func (c *mapRangeCheck) selfMinMax(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if !isBuiltin(c.pass, call.Fun, "min") && !isBuiltin(c.pass, call.Fun, "max") {
		return false
	}
	for _, a := range call.Args {
		if aid, ok := a.(*ast.Ident); ok && aid.Name == id.Name {
			return true
		}
	}
	return false
}

// safeWriteTarget reports whether an assignment target is
// order-neutral: rooted in a variable declared inside the loop, or a
// keyed element write (distinct keys commute).
func (c *mapRangeCheck) safeWriteTarget(e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return c.localVar(t)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			return true
		default:
			return false
		}
	}
}

// keyAppend recognizes the collect-keys-for-sorting idiom:
// keys = append(keys, k) (the key possibly converted). Appending
// values or arbitrary expressions stays sensitive — the slice content
// would depend on iteration order with no sort able to fix it
// deterministically.
func (c *mapRangeCheck) keyAppend(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltin(c.pass, call.Fun, "append") || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != id.Name {
		return false
	}
	for _, a := range call.Args[1:] {
		if !c.isKeyExpr(a) {
			return false
		}
	}
	return true
}

// isKeyExpr reports whether e is the range key variable, possibly
// wrapped in a conversion.
func (c *mapRangeCheck) isKeyExpr(e ast.Expr) bool {
	key, ok := c.rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == key.Name
	case *ast.CallExpr:
		// conversion of the key, e.g. append(keys, string(k))
		if len(e.Args) == 1 && c.isConversion(e) {
			return c.isKeyExpr(e.Args[0])
		}
	}
	return false
}

// expr flags ordering-sensitive expressions: any call that is not a
// pure builtin or a type conversion.
func (c *mapRangeCheck) expr(e ast.Expr) {
	if e == nil || c.reason != "" {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if c.reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.isConversion(call) || isPureBuiltin(c.pass, call.Fun) {
			return true
		}
		c.sensitive("call to %s", exprString(call.Fun))
		return false
	})
}

// isConversion reports whether call is a type conversion.
func (c *mapRangeCheck) isConversion(call *ast.CallExpr) bool {
	tv, ok := c.pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// localVar reports whether expr is an identifier declared inside the
// range statement (including the key/value variables).
func (c *mapRangeCheck) localVar(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.Info.Uses[id]
	if obj == nil {
		obj = c.pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= c.rs.Pos() && obj.Pos() <= c.rs.End()
}

// integer reports whether expr has an integer (or untyped integer)
// type, the only kinds whose compound accumulation commutes exactly.
func (c *mapRangeCheck) integer(expr ast.Expr) bool {
	t := c.pass.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := underlying(t).(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// underlying unwraps aliases and returns the underlying type.
func underlying(t types.Type) types.Type { return types.Unalias(t).Underlying() }

// exprString renders an expression for a diagnostic message.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// isBuiltin reports whether fun resolves to the named Go builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// pureBuiltins are builtins with no observable ordering effect.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"delete": true, "append": true, "make": true, "new": true,
	"real": true, "imag": true, "complex": true, "copy": true,
}

// isPureBuiltin reports whether fun is one of the order-neutral
// builtins. append/copy reached through this path are arguments of a
// larger expression; the assignment-level rules already decided
// whether their destination is safe.
func isPureBuiltin(pass *Pass, fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || !pureBuiltins[id.Name] {
		return false
	}
	_, isB := pass.Info.Uses[id].(*types.Builtin)
	return isB
}
