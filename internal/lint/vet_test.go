package lint_test

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestVetFindsSeededViolations proves the driver end of the pipeline:
// pointed at a fixture package full of violations, Vet reports them.
func TestVetFindsSeededViolations(t *testing.T) {
	var out bytes.Buffer
	n, err := lint.Vet(&out, "./testdata/src/walltime")
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if n == 0 {
		t.Fatalf("Vet found no violations in the seeded fixture; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "walltime:") {
		t.Errorf("Vet output does not attribute findings to walltime:\n%s", out.String())
	}
}

// TestVetBinaryExitsNonZero runs the actual ncsw-vet binary against a
// seeded violation and asserts the non-zero exit status CI depends
// on. Skipped under -short: it shells out to the go tool.
func TestVetBinaryExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("exec of go run under -short")
	}
	cmd := exec.Command("go", "run", "./cmd/ncsw-vet", "./internal/lint/testdata/src/walltime")
	cmd.Dir = "../.." // module root
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected ncsw-vet to exit non-zero on seeded violations, got err=%v, output:\n%s", err, out)
	}
	if ee.ExitCode() == 0 {
		t.Fatalf("ncsw-vet exited 0 on seeded violations:\n%s", out)
	}
	if !strings.Contains(string(out), "finding(s)") {
		t.Errorf("ncsw-vet output missing findings summary:\n%s", out)
	}
}

// TestVetRepoIsClean is the in-tree mirror of the CI lint job: the
// whole module must vet clean. Skipped under -short (it loads and
// type-checks every package in the module).
func TestVetRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module vet under -short")
	}
	var out bytes.Buffer
	n, err := lint.Vet(&out, "repro/...")
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if n != 0 {
		t.Errorf("ncsw-vet found %d finding(s) in the module:\n%s", n, out.String())
	}
}
