package lint

import (
	"go/ast"
	"go/types"
)

// corePkgPath is the package whose serving types carry the per-item
// lifecycle timestamps introduced in PR 2.
const corePkgPath = "repro/internal/core"

// itemPayload / itemStamps: a core.Item literal that carries work
// (an image or a ground-truth label) must say when that work arrived.
// Index alone is exempt — Index -1 literals are the framework's
// end-of-stream sentinels and carry no payload.
var (
	itemPayload = map[string]bool{"Image": true, "Label": true}
	itemStamps  = []string{"ArrivedAt"}
)

// resultPayload / resultStamps: a core.Result literal that reports an
// inference (a prediction, a device, an error) must stamp the full
// lifecycle — arrival, service start, completion — or every latency
// split downstream (Wait, ServiceTime, goodput vs SLO) silently
// measures from zero.
var (
	resultPayload = map[string]bool{
		"Index": true, "Label": true, "Pred": true, "Confidence": true,
		"Output": true, "Device": true, "Err": true,
	}
	resultStamps = []string{"ArrivedAt", "Start", "End"}
)

// Resultstamp reports composite literals of core.Item and core.Result
// in internal/ packages that populate payload fields without the
// lifecycle timestamps. Zero literals and sentinel literals (Index
// only) pass; so does any code that builds a bare literal and routes
// it through a stamping helper such as StreamSource.Push, which sets
// ArrivedAt at the push instant. Stage-boundary hops (PR 8) get one
// extra rule: an Item literal that forwards a Result's output tensor
// downstream (Image from a .Output selector) must *carry* the
// upstream arrival stamp (ArrivedAt from a .ArrivedAt selector) — a
// freshly invented stamp at a stage boundary silently resets the
// item's end-to-end latency. Test files are exempt: tests build
// half-stamped literals to probe exactly these edge cases.
var Resultstamp = &Analyzer{
	Name: "resultstamp",
	Doc:  "require core.Item/core.Result literals to set their lifecycle timestamps (or flow through a stamping helper)",
	Run: func(pass *Pass) {
		if !isInternalPkg(pass.Path) {
			return
		}
		for _, f := range pass.Files {
			if isTestFile(pass.Filename(f.Pos())) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				name := coreTypeName(pass, lit)
				switch name {
				case "Item":
					checkStamps(pass, lit, "core.Item", itemPayload, itemStamps)
					checkStageHop(pass, lit)
				case "Result":
					checkStamps(pass, lit, "core.Result", resultPayload, resultStamps)
				}
				return true
			})
		}
	},
}

// checkStageHop applies the stage-boundary rule to a keyed core.Item
// literal: Image taken from a Result's .Output field marks the
// literal as an inter-stage hop, and its ArrivedAt must then be
// carried from an upstream .ArrivedAt field rather than re-stamped.
// A hop that omits ArrivedAt entirely is already reported by the
// payload rule, so this check only fires on a present-but-fresh
// stamp.
func checkStageHop(pass *Pass, lit *ast.CompositeLit) {
	var arrived ast.Expr
	hop := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // unkeyed literal: the payload rule's exemption applies
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch id.Name {
		case "Image":
			hop = isFieldSelector(kv.Value, "Output")
		case "ArrivedAt":
			arrived = kv.Value
		}
	}
	if !hop || arrived == nil {
		return
	}
	if isFieldSelector(arrived, "ArrivedAt") {
		return
	}
	pass.Reportf(lit.Pos(), "core.Item literal forwards a Result's Output across a stage boundary but re-stamps ArrivedAt — carry the upstream result's ArrivedAt (PR 8) or end-to-end latency resets at the hop")
}

// isFieldSelector reports whether e is a selector expression ending
// in the given field name (e.g. r.Output, res.Inner.ArrivedAt).
func isFieldSelector(e ast.Expr, field string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == field
}

// coreTypeName returns the named-type name of a composite literal
// declared in repro/internal/core ("" otherwise).
func coreTypeName(pass *Pass, lit *ast.CompositeLit) string {
	t := pass.TypeOf(lit)
	if t == nil {
		return ""
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != corePkgPath {
		return ""
	}
	return obj.Name()
}

// checkStamps applies the payload-implies-stamps rule to one keyed
// composite literal. Unkeyed literals necessarily set every field and
// always pass.
func checkStamps(pass *Pass, lit *ast.CompositeLit, label string, payload map[string]bool, stamps []string) {
	set := map[string]bool{}
	hasPayload := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // unkeyed literal: all fields set positionally
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			set[id.Name] = true
			hasPayload = hasPayload || payload[id.Name]
		}
	}
	if !hasPayload {
		return
	}
	var missing []string
	for _, s := range stamps {
		if !set[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(lit.Pos(), "%s literal carries payload fields but does not set %s — stamp the lifecycle (PR 2) or route it through a stamping helper", label, joinNames(missing))
}

// joinNames renders a field list for a diagnostic.
func joinNames(names []string) string {
	switch len(names) {
	case 1:
		return names[0]
	case 2:
		return names[0] + " and " + names[1]
	default:
		out := ""
		for i, n := range names[:len(names)-1] {
			if i > 0 {
				out += ", "
			}
			out += n
		}
		return out + " and " + names[len(names)-1]
	}
}
