// Package maprange exercises the maprange analyzer: ordering-
// sensitive work inside randomized map iteration is a finding;
// commutative accumulation, keyed writes, key collection for sorting,
// and loop-local work are not.
package maprange

import "fmt"

func emitBad(m map[string]int) {
	for k, v := range m { // want `ordering-sensitive \(call to fmt\.Printf\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func dispatchBad(m map[string]int, send func(int)) {
	for _, v := range m { // want `ordering-sensitive \(call to send\)`
		send(v)
	}
}

func appendValuesBad(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `last-write-wins assignment to out`
		out = append(out, v)
	}
	return out
}

func floatSumBad(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulation into total is order-dependent for non-integer types`
		total += v
	}
	return total
}

func stringConcatBad(m map[string]string) string {
	var s string
	for _, v := range m { // want `accumulation into s is order-dependent for non-integer types`
		s += v
	}
	return s
}

func earlyReturnBad(m map[string]int) string {
	for k := range m { // want `early return picks whichever key iterates first`
		return k
	}
	return ""
}

func breakBad(m map[string]int, limit int) int {
	n := 0
	for _, v := range m { // want `break exits after an order-dependent prefix`
		n += v
		if n > limit {
			break
		}
	}
	return n
}

func sendBad(m map[string]int, ch chan int) {
	for _, v := range m { // want `channel send`
		ch <- v
	}
}

func lastWriteBad(m map[string]string) string {
	var last string
	for _, v := range m { // want `last-write-wins assignment to last`
		last = v
	}
	return last
}

func collectKeysOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func collectConvertedKeysOK(m map[int]string) []int64 {
	var keys []int64
	for k := range m {
		keys = append(keys, int64(k))
	}
	return keys
}

func intSumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func counterOK(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func keyedWriteOK(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

func deleteOK(m, other map[string]int) {
	for k := range m {
		delete(other, k)
	}
}

func foundFlagOK(m map[string]bool, needle string) bool {
	found := false
	for k := range m {
		if k == needle {
			found = true
		}
	}
	return found
}

func localWorkOK(m map[string]int) int {
	type pair struct{ a, b int }
	total := 0
	for _, v := range m {
		p := pair{a: v}
		p.b = p.a * 2
		total += p.b
	}
	return total
}

func maxTrackingViaBuiltinOK(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = max(best, v)
	}
	return best
}

func allowedEmit(m map[string]int) {
	//ncsw:allow maprange fixture: output order pinned by the caller
	for k := range m {
		fmt.Println(k)
	}
}

func sliceRangeIsNotChecked(s []int, ch chan int) {
	for _, v := range s {
		ch <- v
	}
}
