// Package exportdoc exercises the exportdoc analyzer: every exported
// symbol in an internal/ package needs a doc comment — top-level
// declarations, members of const/var/type blocks, and methods on
// exported receiver types.
package exportdoc

// Documented carries a doc comment and is fine.
const Documented = 1

const Undocumented = 2 // want `exported const Undocumented has no doc comment`

// Knobs below show that a block comment does not excuse its members.
const (
	// BlockDocumented has its own comment.
	BlockDocumented = 3
	BlockBare       = 4 // want `exported const BlockBare has no doc comment`

	unexportedIsFine = 5
)

var Global int // want `exported var Global has no doc comment`

// Config is documented.
type Config struct{}

type Undoc struct{} // want `exported type Undoc has no doc comment`

// Run is documented.
func (Config) Run() {}

func (Config) Stop() {} // want `exported method Config\.Stop has no doc comment`

func Top() {} // want `exported function Top has no doc comment`

func unexportedFunc() {}

type hidden struct{}

// Methods on unexported types are not API surface.
func (hidden) Visible() {}

var (
	// GroupDocumented is fine.
	GroupDocumented = 6
	_               = unexportedIsFine
	_               = hidden{}
)

func init() { unexportedFunc(); Config{}.Run(); Config{}.Stop(); Top(); hidden{}.Visible() }
