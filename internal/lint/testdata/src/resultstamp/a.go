// Package resultstamp exercises the resultstamp analyzer: core.Item
// and core.Result literals that carry payload must stamp the PR 2
// lifecycle timestamps; zero literals and Index-only sentinels pass.
package resultstamp

import (
	"time"

	"repro/internal/core"
)

func sentinelOK() core.Item {
	return core.Item{Index: -1}
}

func zeroOK() core.Item {
	return core.Item{}
}

func payloadBad(label int) core.Item {
	return core.Item{Index: 1, Label: label} // want `core\.Item literal carries payload fields but does not set ArrivedAt`
}

func pointerBad(label int) *core.Item {
	return &core.Item{Label: label} // want `core\.Item literal carries payload fields but does not set ArrivedAt`
}

func stampedOK(now time.Duration) core.Item {
	return core.Item{Index: 1, Label: 3, ArrivedAt: now}
}

func resultZeroOK() core.Result {
	return core.Result{}
}

func resultBad(dev string) core.Result {
	return core.Result{Index: 1, Device: dev} // want `core\.Result literal carries payload fields but does not set ArrivedAt, Start and End`
}

func resultPartialBad(now time.Duration) core.Result {
	return core.Result{Pred: 2, Start: now} // want `does not set ArrivedAt and End`
}

func resultStampedOK(now time.Duration) core.Result {
	return core.Result{Index: 1, Pred: 2, ArrivedAt: now, Start: now, End: now, Device: "cpu"}
}

func allowed() core.Item {
	//ncsw:allow resultstamp fixture: the caller's helper stamps arrival
	return core.Item{Index: 7, Label: 1}
}

func stageHopOK(r core.Result) core.Item {
	return core.Item{Index: r.Index, Image: r.Output, Label: r.Label, ArrivedAt: r.ArrivedAt}
}

func stageHopRestampBad(r core.Result, now time.Duration) core.Item {
	return core.Item{Index: r.Index, Image: r.Output, ArrivedAt: now} // want `re-stamps ArrivedAt`
}

func stageHopMissingBad(r core.Result) core.Item {
	return core.Item{Index: r.Index, Image: r.Output} // want `does not set ArrivedAt`
}

func nonHopFreshStampOK(img *struct{ Output int }, now time.Duration) core.Item {
	// Image not taken from a Result's Output selector chain is not a
	// hop... but a bare .Output selector is treated as one regardless
	// of the receiver type (the analyzer is syntactic by design), so
	// use a non-Output source here.
	return core.Item{Index: 1, Label: img.Output, ArrivedAt: now}
}
