package seededrand

import "math/rand"

// Test files are allowlisted: a test may draw throwaway values from
// the global source without touching any benchmark table.
func helperRoll() int {
	return rand.Intn(6)
}
