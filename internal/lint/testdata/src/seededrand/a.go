// Package seededrand exercises the seededrand analyzer: the
// process-global math/rand (v1 and v2) top-level functions are
// findings everywhere; explicitly seeded generators and type
// references are not.
package seededrand

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad() int {
	return rand.Intn(10) // want `rand\.Intn draws from the implicitly seeded process-global source`
}

func badV2() int {
	return v2.IntN(10) // want `rand\.IntN draws from the implicitly seeded process-global source`
}

func badShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `rand\.Shuffle draws from`
}

func seededIsFine() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func seededV2IsFine() uint64 {
	return v2.NewPCG(1, 2).Uint64()
}

func typeReferenceIsFine(r *rand.Rand) int {
	return r.Intn(5)
}

func allowed() float64 {
	//ncsw:allow seededrand fixture proves suppression
	return rand.Float64()
}
