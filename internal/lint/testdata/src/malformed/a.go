// Package malformed exercises //ncsw:allow hygiene: a directive with
// no reason, or naming an unknown analyzer, is a finding of its own
// and never suppresses anything.
package malformed

import "time"

func missingReason() time.Time {
	// want-below `missing reason`
	//ncsw:allow walltime
	return time.Now() // want `time\.Now reads the wall clock`
}

func unknownAnalyzer() time.Time {
	// want-below `unknown analyzer "walltmie"`
	//ncsw:allow walltmie the analyzer name is typoed
	return time.Now() // want `time\.Now reads the wall clock`
}

func bareDirective() time.Time {
	// want-below `missing analyzer name and reason`
	//ncsw:allow
	return time.Now() // want `time\.Now reads the wall clock`
}
