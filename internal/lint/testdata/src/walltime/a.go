// Package walltime exercises the walltime analyzer: wall-clock reads
// inside internal/ are findings, sim-clock flow and Duration
// arithmetic are not, and //ncsw:allow suppresses a finding on its
// line or the line below.
package walltime

import (
	wall "time"
)

func bad() wall.Time {
	wall.Sleep(wall.Millisecond) // want `time\.Sleep reads the wall clock`
	return wall.Now()            // want `time\.Now reads the wall clock`
}

func badSince(t0 wall.Time) wall.Duration {
	return wall.Since(t0) // want `time\.Since reads the wall clock`
}

func badAfter() {
	<-wall.After(wall.Second) // want `time\.After reads the wall clock`
}

func badTicker() *wall.Ticker {
	return wall.NewTicker(wall.Second) // want `time\.NewTicker reads the wall clock`
}

func allowedAbove() wall.Time {
	//ncsw:allow walltime fixture proves line-above suppression
	return wall.Now()
}

func allowedTrailing() wall.Time {
	return wall.Now() //ncsw:allow walltime fixture proves same-line suppression
}

func wrongAnalyzer() wall.Time {
	//ncsw:allow seededrand a directive naming another analyzer must not suppress
	return wall.Now() // want `time\.Now reads the wall clock`
}

func durationsAreFine() wall.Duration {
	d := 3 * wall.Second
	return d.Round(wall.Millisecond)
}
