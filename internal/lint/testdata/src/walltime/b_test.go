package walltime

import "time"

// Test files are allowlisted: harness timeouts and wall-clock
// bookkeeping in tests never reach a benchmark table.
func helperNow() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
