// Package exportdocouter exercises the exportdoc analyzer's scope:
// this fixture runs under a non-internal import path, so nothing in
// it is a finding even though every export below is bare.
package exportdocouter

const Bare = 1

type AlsoBare struct{}

func NoDoc() {}
