// Command walltimecmd exercises the walltime analyzer's cmd/
// allowlist: binaries outside internal/ keep their real-time progress
// meters, so nothing in this file is a finding.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	fmt.Println(time.Since(start))
}
