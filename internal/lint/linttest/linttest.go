// Package linttest is the fixture harness for the ncsw-vet analyzer
// suite — the stdlib stand-in for golang.org/x/tools/go/analysis/
// analysistest, which this module deliberately does not depend on.
//
// A fixture is a directory of Go files under the calling test's
// testdata/ tree. Expected findings are declared inline with trailing
// comments of the form
//
//	time.Now() // want `reads the wall clock`
//
// where each backquoted or double-quoted segment after `want` is a
// regular expression one diagnostic on that line must match. Lines
// without a want comment must produce no diagnostic, so allowlist
// paths (cmd/, *_test.go) and //ncsw:allow suppressions are asserted
// by silence. The harness fails the test on any unmatched diagnostic
// or unsatisfied expectation.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts a want comment's expectation list. The want-below
// form anchors the expectation to the following line — needed when
// the flagged line is itself a comment (e.g. a malformed //ncsw:allow
// directive), where a trailing remark would merge into it.
var wantRe = regexp.MustCompile(`// want(-below)? (.*)$`)

// wantArgRe extracts the individual quoted regexps of a want comment.
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one `// want` regexp waiting for a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run type-checks the fixture directory as a package with the given
// import path (scope rules key on the path, so fixtures choose their
// own: "repro/internal/..." is covered, "repro/cmd/..." is
// allowlisted), runs exactly one analyzer, and asserts the findings
// against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	u := lint.NewUniverse()
	pkg, err := u.TypeCheckFiles(importPath, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	var wants []*expectation
	for _, name := range files {
		wants = append(wants, parseWants(t, name)...)
	}

	for _, d := range lint.RunAnalyzers(pkg, []*lint.Analyzer{a}) {
		pos := pkg.Fset.Position(d.Pos)
		if exp := claim(wants, pos.Filename, pos.Line, d.Message); exp == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants reads one fixture file's want comments.
func parseWants(t *testing.T, filename string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		target := i + 1
		if m[1] == "-below" {
			target = i + 2
		}
		args := wantArgRe.FindAllStringSubmatch(m[2], -1)
		if len(args) == 0 {
			t.Fatalf("%s:%d: malformed want comment %q", filename, i+1, line)
		}
		for _, a := range args {
			pat := a[1]
			if pat == "" {
				pat = a[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", filename, i+1, err)
			}
			out = append(out, &expectation{file: filename, line: target, re: re})
		}
	}
	return out
}

// claim matches a diagnostic to the first unclaimed expectation on
// its line, returning nil when none fits.
func claim(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
