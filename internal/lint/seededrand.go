package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand (v1 and v2) package-level
// functions that build an explicitly seeded generator rather than
// touching the process-global source. These are the only package-level
// calls the analyzer permits.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Seededrand reports calls to the top-level math/rand and
// math/rand/v2 functions, which draw from a process-global,
// implicitly seeded source: the one kind of randomness that can never
// be reproduced run-to-run. All randomness in this module flows from
// internal/rng (splitmix64 with named sub-streams) or, at minimum, an
// explicitly seeded rand.New(rand.NewSource(seed)). Unlike walltime,
// the ban covers the whole module — cmd/ included — because a binary
// that perturbs results with global randomness poisons a BENCH
// snapshot just as surely as a library would. *_test.go files are
// allowlisted.
var Seededrand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand top-level functions — randomness must come from internal/rng or an explicitly seeded source",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			if isTestFile(pass.Filename(f.Pos())) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path := pkgPathOf(pass, sel)
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				// Only package-level functions touch the global source;
				// referring to rand.Source, rand.Rand etc. is fine.
				if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				if randConstructors[sel.Sel.Name] {
					return true
				}
				pass.Reportf(sel.Pos(), "rand.%s draws from the implicitly seeded process-global source; use internal/rng or an explicitly seeded rand.New(rand.NewSource(seed))", sel.Sel.Name)
				return true
			})
		}
	},
}
