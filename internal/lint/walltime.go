package lint

import (
	"go/ast"
	"go/types"
)

// wallFuncs are the package-level time functions that read or wait on
// the host's wall clock. Everything else in package time (Duration
// arithmetic, formatting, constants) is deterministic and allowed.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime reports wall-clock reads and host timers inside internal/
// packages. Every instant a simulation experiment observes must come
// from the virtual clock (sim.Proc.Now / sim.Env), or two runs of the
// same experiment stop being byte-identical (DESIGN.md §4). cmd/ and
// examples/ binaries sit outside internal/ and may keep real-time
// progress meters; *_test.go files are allowlisted for timeouts and
// harness bookkeeping.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Sleep/After and friends inside internal/ — all time flows through the sim clock",
	Run: func(pass *Pass) {
		if !isInternalPkg(pass.Path) {
			return
		}
		for _, f := range pass.Files {
			if isTestFile(pass.Filename(f.Pos())) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if pkgPathOf(pass, sel) == "time" && wallFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; inside internal/ all time must flow through the sim clock (sim.Proc.Now)", sel.Sel.Name)
				}
				return true
			})
		}
	},
}

// pkgPathOf returns the import path of the package a selector's
// qualifier names ("" when the qualifier is not a package, e.g. a
// field access). Alias-proof: it resolves through the type-checker,
// not the source spelling.
func pkgPathOf(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
