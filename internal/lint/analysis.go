// Package lint is the ncsw-vet static-analysis suite: five
// domain-specific analyzers that enforce the determinism and
// API-hygiene invariants every benchmark table in this reproduction
// rests on (DESIGN.md §4, §8).
//
// The package mirrors the golang.org/x/tools/go/analysis vocabulary —
// an Analyzer owns a Run function over a Pass and emits Diagnostics —
// but is self-contained on the standard library (go/ast, go/types,
// and the go command for package listing), because the module
// deliberately has no external dependencies. If the module ever grows
// an x/tools dependency the analyzers port mechanically: Run signatures
// and Diagnostic semantics match.
//
// Findings are suppressible at the site with a
//
//	//ncsw:allow <analyzer> <reason>
//
// directive on the flagged line or the line directly above it; the
// reason is mandatory and should say why the invariant does not apply
// (see suppress.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name the suppression directive and
// CLI refer to it by, one line of documentation, and a Run function
// applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ncsw:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-line description shown by `ncsw-vet -help`.
	Doc string
	// Run inspects one package and reports findings through
	// pass.Report/Reportf. Scope rules (which packages and files the
	// invariant covers) live inside Run, so fixture tests exercise
	// them exactly as the real driver does.
	Run func(pass *Pass)
}

// Pass carries one package through one analyzer: the parsed files,
// the type information, and the diagnostic sink.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps AST positions to file:line.
	Fset *token.FileSet
	// Path is the package import path (e.g. "repro/internal/core").
	// Fixture packages get their testdata-relative path, so scope
	// rules keyed on path segments are testable.
	Path string
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds expression types, uses and defs for Files.
	Info *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Pos is the position of the offending syntax.
	Pos token.Pos
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violation and, by convention, the fix.
	Message string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string { return p.Fset.Position(pos).Filename }

// TypeOf returns the type of expr, or nil when unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// RunAnalyzers applies the given analyzers to pkg and returns the
// suppression-filtered findings sorted by position. Malformed
// //ncsw:allow directives surface as findings here too (attributed
// to "ncsw-vet"). The fixture harness (linttest) calls this with a
// single analyzer; the driver calls it with All().
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		raw = append(raw, pass.diags...)
	}
	out := applySuppressions(pkg, raw)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// isTestFile reports whether filename is a Go test file. Test files
// are allowlisted by every determinism analyzer: tests may read wall
// clocks, seed nothing, and build half-stamped literals freely.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// isInternalPkg reports whether path lies under an internal/ element —
// the production surface the determinism invariants cover. cmd/,
// examples/ and the root facade sit outside it by construction.
func isInternalPkg(path string) bool {
	return path == "internal" ||
		strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") ||
		strings.HasSuffix(path, "/internal")
}
