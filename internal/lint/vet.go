package lint

import (
	"fmt"
	"io"
)

// All returns the full analyzer suite in the order diagnostics
// attribute them. This is the set `ncsw-vet` runs and the set
// //ncsw:allow directives may name.
func All() []*Analyzer {
	return []*Analyzer{Exportdoc, Maprange, Resultstamp, Seededrand, Walltime}
}

// Vet loads the packages matched by patterns, runs every analyzer,
// and prints one "file:line:col: analyzer: message" finding per line
// to w. It returns the number of findings; a non-nil error means the
// load itself failed (bad pattern, unparseable or untypeable source).
// cmd/ncsw-vet is a thin wrapper that turns findings > 0 into exit
// status 1 — tests call Vet directly to prove that a seeded violation
// makes the binary fail.
func Vet(w io.Writer, patterns ...string) (int, error) {
	u := NewUniverse()
	pkgs, err := u.Load(patterns...)
	if err != nil {
		return 0, err
	}
	return VetPackages(w, pkgs), nil
}

// VetPackages runs the full suite over already-loaded packages and
// prints findings to w, returning their count.
func VetPackages(w io.Writer, pkgs []*Package) int {
	analyzers := All()
	n := 0
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(pkg, analyzers) {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			n++
		}
	}
	return n
}
