package lint

import (
	"go/ast"
	"go/token"
)

// Exportdoc reports exported symbols in internal/ packages that carry
// no doc comment. It is the AST-accurate replacement for the awk gate
// that scripts/ci.sh used to run over internal/fault and
// internal/core only: top-level exported funcs, types, consts and
// vars; exported members of const/var/type blocks (each needs its own
// comment above the member — a block comment or a trailing same-line
// remark does not document an individual knob); and exported methods
// on exported receiver types. The reliability and serving
// surfaces are API for downstream code — an undocumented knob is a
// review bug. Test files are exempt.
var Exportdoc = &Analyzer{
	Name: "exportdoc",
	Doc:  "require a doc comment on every exported symbol in internal/ packages",
	Run: func(pass *Pass) {
		if !isInternalPkg(pass.Path) {
			return
		}
		for _, f := range pass.Files {
			if isTestFile(pass.Filename(f.Pos())) {
				continue
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFuncDoc(pass, d)
				case *ast.GenDecl:
					checkGenDoc(pass, d)
				}
			}
		}
	},
}

// checkFuncDoc flags an undocumented exported function or an
// undocumented exported method on an exported receiver type.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverTypeName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: not API surface
		}
		kind = "method " + recv + "."
	} else {
		kind = "function "
	}
	pass.Reportf(d.Name.Pos(), "exported %s%s has no doc comment", kind, d.Name.Name)
}

// receiverTypeName unwraps a method receiver type expression to its
// base type name ("" when unrecognized).
func receiverTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// checkGenDoc flags undocumented exported names in a const/var/type
// declaration. Ungrouped declarations need the declaration comment;
// grouped specs each need their own comment above the member — a
// single comment on the block does not excuse its members, matching
// the awk gate this replaces.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	grouped := d.Lparen.IsValid()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if docFor(grouped, d, s.Doc) {
				continue
			}
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
		case *ast.ValueSpec:
			name := firstExported(s.Names)
			if name == nil {
				continue
			}
			if docFor(grouped, d, s.Doc) {
				continue
			}
			pass.Reportf(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
		}
	}
}

// docFor reports whether a spec is documented: by the declaration
// comment when ungrouped, or by its own leading comment when inside
// a ( ... ) block.
func docFor(grouped bool, d *ast.GenDecl, doc *ast.CommentGroup) bool {
	if grouped {
		return doc != nil
	}
	return d.Doc != nil || doc != nil
}

// firstExported returns the first exported identifier, or nil.
func firstExported(names []*ast.Ident) *ast.Ident {
	for _, n := range names {
		if n.IsExported() {
			return n
		}
	}
	return nil
}
