// Package graphfile implements the compiled-graph blob the simulated
// Neural Compute Stick consumes. It plays the role of the NCSDK's
// mvNCCompile output: the host compiles a network once into a binary
// file whose weights are already converted to FP16, ships the blob to
// the device over USB (mvncAllocateGraph), and the on-device runtime
// parses it back into an executable network.
//
// The format is self-contained and versioned:
//
//	magic "NCSG" | version u32 | header | layer records | crc32
//
// Strings are uvarint-length-prefixed UTF-8; integers are little
// endian; weight blobs are IEEE binary16 (uint16 per element), exactly
// like real NCS graph files. A CRC-32 trailer lets the device firmware
// reject corrupted transfers.
package graphfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/half"
)

// Magic identifies a compiled graph blob.
const Magic = "NCSG"

// Version is the current format version. Parse rejects other versions.
const Version uint32 = 2

// Layer kind tags. Values are part of the on-disk format; never
// reorder them.
const (
	kindConv    uint8 = 1
	kindPool    uint8 = 2
	kindReLU    uint8 = 3
	kindLRN     uint8 = 4
	kindConcat  uint8 = 5
	kindDropout uint8 = 6
	kindFC      uint8 = 7
	kindSoftmax uint8 = 8
)

// writer serializes primitive values into a buffer.
type writer struct {
	buf bytes.Buffer
}

func (w *writer) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *writer) u32(v uint32) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) u64(v uint64) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }

func (w *writer) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) ints(vals []int) {
	w.uvarint(uint64(len(vals)))
	for _, v := range vals {
		if v < 0 {
			panic(fmt.Sprintf("graphfile: negative dimension %d", v))
		}
		w.uvarint(uint64(v))
	}
}

func (w *writer) strs(vals []string) {
	w.uvarint(uint64(len(vals)))
	for _, v := range vals {
		w.str(v)
	}
}

// fp16Blob writes a float32 slice as binary16 values.
func (w *writer) fp16Blob(data []float32) {
	w.uvarint(uint64(len(data)))
	for _, v := range data {
		_ = binary.Write(&w.buf, binary.LittleEndian, half.FromFloat32(v).Bits())
	}
}

// reader deserializes primitive values and tracks errors so call
// sites stay linear.
type reader struct {
	r   *bytes.Reader
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("graphfile: "+format, args...)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.fail("truncated blob: %v", err)
		return 0
	}
	return b
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var v uint32
	if err := binary.Read(r.r, binary.LittleEndian, &v); err != nil {
		r.fail("truncated blob: %v", err)
	}
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	if err := binary.Read(r.r, binary.LittleEndian, &v); err != nil {
		r.fail("truncated blob: %v", err)
	}
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail("truncated varint: %v", err)
	}
	return v
}

// maxLen caps collection sizes parsed from untrusted blobs so a
// corrupted length cannot trigger a giant allocation.
const maxLen = 1 << 28

func (r *reader) length(what string) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > maxLen {
		r.fail("%s length %d exceeds limit", what, n)
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.length("string")
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail("truncated string: %v", err)
		return ""
	}
	return string(b)
}

func (r *reader) ints() []int {
	n := r.length("int list")
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.uvarint())
	}
	return out
}

func (r *reader) strs() []string {
	n := r.length("string list")
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *reader) fp16Blob() []float32 {
	n := r.length("weight blob")
	if r.err != nil {
		return nil
	}
	if int64(n)*2 > int64(r.r.Len()) {
		r.fail("weight blob of %d halves exceeds remaining %d bytes", n, r.r.Len())
		return nil
	}
	out := make([]float32, n)
	var bits uint16
	for i := range out {
		if err := binary.Read(r.r, binary.LittleEndian, &bits); err != nil {
			r.fail("truncated weights: %v", err)
			return nil
		}
		out[i] = half.FromBits(bits).Float32()
	}
	return out
}
