package graphfile

import (
	"fmt"
	"hash/crc32"

	"repro/internal/nn"
)

// Compile serializes g into an NCS graph blob. Weights are converted
// to binary16, mirroring the FP16 conversion mvNCCompile performs; the
// source graph is not modified.
//
// The blob embeds the graph topology, all parameters, and a CRC-32
// trailer. Parse(Compile(g)) yields a functionally identical network
// whose weights are the FP16-rounded originals.
func Compile(g *nn.Graph) ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphfile: refusing to compile invalid graph: %w", err)
	}
	var w writer
	w.buf.WriteString(Magic)
	w.u32(Version)
	w.str(g.Name())
	w.ints(g.InputShape())
	w.str(g.Output())
	total := g.TotalStats()
	w.u64(uint64(total.MACs))
	w.u64(uint64(total.Params))

	names := g.LayerNames()
	w.uvarint(uint64(len(names)))
	for _, name := range names {
		if err := writeLayer(&w, g, name); err != nil {
			return nil, err
		}
	}

	sum := crc32.ChecksumIEEE(w.buf.Bytes())
	w.u32(sum)
	return w.buf.Bytes(), nil
}

func writeLayer(w *writer, g *nn.Graph, name string) error {
	l := g.Layer(name)
	w.str(name)
	w.strs(g.InputsOf(name))
	switch t := l.(type) {
	case *nn.Conv:
		w.u8(kindConv)
		w.ints([]int{t.InC, t.OutC, t.KH, t.KW, t.Stride, t.Pad})
		w.fp16Blob(t.Weights.Data)
		w.fp16Blob(t.Bias.Data)
	case *nn.Pool:
		w.u8(kindPool)
		flags := 0
		if t.PoolOp == nn.AvgPool {
			flags |= 1
		}
		if t.CeilMode {
			flags |= 2
		}
		if t.Global {
			flags |= 4
		}
		w.ints([]int{t.K, t.Stride, t.Pad, flags})
	case *nn.ReLU:
		w.u8(kindReLU)
	case *nn.LRN:
		w.u8(kindLRN)
		w.ints([]int{t.Size})
		w.u32(f32bits(t.Alpha))
		w.u32(f32bits(t.Beta))
		w.u32(f32bits(t.K))
	case *nn.Concat:
		w.u8(kindConcat)
	case *nn.Dropout:
		w.u8(kindDropout)
		w.u32(f32bits(t.Ratio))
	case *nn.FullyConnected:
		w.u8(kindFC)
		w.ints([]int{t.InF, t.OutF})
		w.fp16Blob(t.Weights.Data)
		w.fp16Blob(t.Bias.Data)
	case *nn.Softmax:
		w.u8(kindSoftmax)
	default:
		return fmt.Errorf("graphfile: unsupported layer type %T (%s)", l, name)
	}
	return nil
}
