package graphfile

import (
	"bytes"
	"hash/crc32"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func microGraph(t testing.TB) *nn.Graph {
	t.Helper()
	return nn.NewMicroGoogLeNet(nn.MicroConfig{Classes: 10, Input: 32}, rng.New(7))
}

func TestCompileParseRoundTrip(t *testing.T) {
	g := microGraph(t)
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	parsed, info, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != g.Name() || info.Layers != g.Len() || info.Output != g.Output() {
		t.Errorf("info = %+v", info)
	}
	if !info.InputShape.Equal(g.InputShape()) {
		t.Errorf("input shape %v vs %v", info.InputShape, g.InputShape())
	}
	if parsed.Len() != g.Len() {
		t.Fatalf("layer count %d vs %d", parsed.Len(), g.Len())
	}
	for i, n := range g.LayerNames() {
		if parsed.LayerNames()[i] != n {
			t.Fatalf("layer order diverges at %d: %q vs %q", i, parsed.LayerNames()[i], n)
		}
	}
}

func TestParsedWeightsAreFP16Rounded(t *testing.T) {
	g := microGraph(t)
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	parsed, _, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	orig := g.Layer("conv1").(*nn.Conv)
	got := parsed.Layer("conv1").(*nn.Conv)
	if !got.Weights.IsFP16Exact() {
		t.Error("parsed weights must be FP16-exact")
	}
	want := orig.Weights.Clone()
	want.QuantizeFP16()
	for i := range want.Data {
		if got.Weights.Data[i] != want.Data[i] {
			t.Fatalf("weight %d: %g vs %g", i, got.Weights.Data[i], want.Data[i])
		}
	}
}

func TestCompileDoesNotMutateSource(t *testing.T) {
	g := microGraph(t)
	conv := g.Layer("conv1").(*nn.Conv)
	before := append([]float32(nil), conv.Weights.Data...)
	if _, err := Compile(g); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if conv.Weights.Data[i] != before[i] {
			t.Fatal("Compile mutated source weights")
		}
	}
}

func TestParsedGraphProducesSameOutputsAsQuantizedOriginal(t *testing.T) {
	g := microGraph(t)
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	parsed, _, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Quantize the original in place: it should now match the parsed
	// network exactly under FP16 execution.
	g.QuantizeWeightsFP16()
	in := tensor.New(1, 3, 32, 32)
	in.FillNormal(rng.New(5), 0, 64)
	a, err := g.Forward(in, nn.FP16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parsed.Forward(in, nn.FP16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("output %d differs: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	g := microGraph(t)
	a, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Compile must be deterministic")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	g := microGraph(t)
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short", func(t *testing.T) {
		if _, _, err := Parse(blob[:4]); err == nil {
			t.Error("short blob accepted")
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'X'
		if _, _, err := Parse(bad); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[4] = 0xFF // little-endian version field
		if _, _, err := Parse(bad); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x40
		if _, _, err := Parse(bad); err == nil {
			t.Error("checksum must catch payload corruption")
		}
	})
	t.Run("flipped-trailer", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-1] ^= 1
		if _, _, err := Parse(bad); err == nil {
			t.Error("checksum must catch trailer corruption")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := Parse(blob[:len(blob)-10]); err == nil {
			t.Error("truncated blob accepted")
		}
	})
}

func TestParseRejectsTrailingGarbage(t *testing.T) {
	g := microGraph(t)
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	// Splice garbage between payload and a recomputed checksum.
	// Easiest valid-CRC attack: append bytes then fix the CRC.
	payload := append([]byte(nil), blob[:len(blob)-4]...)
	payload = append(payload, 0xDE, 0xAD)
	sum := crc32.ChecksumIEEE(payload)
	bad := append(payload, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	if _, _, err := Parse(bad); err == nil {
		t.Error("trailing garbage with fixed CRC accepted")
	}
}

func TestInfoCounts(t *testing.T) {
	g := microGraph(t)
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	total := g.TotalStats()
	if info.MACs != total.MACs || info.Params != total.Params {
		t.Errorf("info MACs/Params %d/%d, want %d/%d", info.MACs, info.Params, total.MACs, total.Params)
	}
	if info.Bytes != len(blob) {
		t.Errorf("info.Bytes = %d, want %d", info.Bytes, len(blob))
	}
	// FP16 weights: blob must be roughly 2 bytes per parameter plus
	// topology overhead, far below 4 bytes per parameter.
	if int64(info.Bytes) > total.Params*3 {
		t.Errorf("blob size %d too large for %d FP16 params", info.Bytes, total.Params)
	}
}

func TestCompileFullGoogLeNet(t *testing.T) {
	if testing.Short() {
		t.Skip("large compile skipped in -short")
	}
	g := nn.NewGoogLeNet(rng.New(1))
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	parsed, info, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Layers != 142 || parsed.Len() != 142 {
		t.Errorf("GoogLeNet blob has %d layers", info.Layers)
	}
	// ~7M params at 2 bytes each ≈ 14 MB.
	if info.Bytes < 13<<20 || info.Bytes > 16<<20 {
		t.Errorf("GoogLeNet blob = %d bytes, expected ~14 MB", info.Bytes)
	}
}

// Property: random single-byte corruption anywhere in the blob is
// always rejected (the CRC catches payload damage; header checks catch
// the rest). Parse must never panic on corrupted input.
func TestQuickParseNeverPanics(t *testing.T) {
	g := nn.NewMicroGoogLeNet(nn.MicroConfig{Classes: 4, Input: 32}, rng.New(3))
	blob, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint32, val byte) bool {
		bad := append([]byte(nil), blob...)
		i := int(pos) % len(bad)
		if bad[i] == val {
			return true // not a corruption
		}
		bad[i] = val
		defer func() {
			if recover() != nil {
				t.Errorf("Parse panicked for corruption at byte %d", i)
			}
		}()
		_, _, err := Parse(bad)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
