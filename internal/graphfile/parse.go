package graphfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Info summarizes a parsed blob's header without reconstructing the
// network; the device runtime reports it after allocation.
type Info struct {
	Name       string
	InputShape tensor.Shape
	Output     string
	MACs       int64
	Params     int64
	Layers     int
	Bytes      int
}

// Parse reconstructs a network from a compiled blob, verifying the
// magic, version, CRC trailer, and final graph integrity. The returned
// graph's weights are FP16-exact (they round-tripped through binary16
// during compilation).
func Parse(blob []byte) (*nn.Graph, *Info, error) {
	if len(blob) < len(Magic)+8 {
		return nil, nil, fmt.Errorf("graphfile: blob too short (%d bytes)", len(blob))
	}
	if string(blob[:len(Magic)]) != Magic {
		return nil, nil, fmt.Errorf("graphfile: bad magic %q", blob[:len(Magic)])
	}
	payload, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	wantSum := binary.LittleEndian.Uint32(trailer)
	if got := crc32.ChecksumIEEE(payload); got != wantSum {
		return nil, nil, fmt.Errorf("graphfile: checksum mismatch (blob corrupted in transfer)")
	}

	r := &reader{r: bytes.NewReader(payload[len(Magic):])}
	if v := r.u32(); v != Version {
		return nil, nil, fmt.Errorf("graphfile: unsupported version %d (want %d)", v, Version)
	}

	info := &Info{Bytes: len(blob)}
	info.Name = r.str()
	info.InputShape = tensor.Shape(r.ints())
	info.Output = r.str()
	info.MACs = int64(r.u64())
	info.Params = int64(r.u64())
	nLayers := r.length("layer count")
	if r.err != nil {
		return nil, nil, r.err
	}
	if !info.InputShape.Valid() {
		return nil, nil, fmt.Errorf("graphfile: invalid input shape %v", info.InputShape)
	}
	info.Layers = nLayers

	g := nn.NewGraph(info.Name, info.InputShape)
	for i := 0; i < nLayers; i++ {
		name := r.str()
		inputs := r.strs()
		layer, err := readLayer(r, name)
		if r.err != nil {
			return nil, nil, r.err
		}
		if err != nil {
			return nil, nil, err
		}
		if _, err := g.Add(layer, inputs...); err != nil {
			return nil, nil, fmt.Errorf("graphfile: blob layer %d: %w", i, err)
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	if r.r.Len() != 0 {
		return nil, nil, fmt.Errorf("graphfile: %d trailing bytes after last layer", r.r.Len())
	}
	if err := g.SetOutput(info.Output); err != nil {
		return nil, nil, fmt.Errorf("graphfile: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graphfile: parsed graph invalid: %w", err)
	}
	return g, info, nil
}

func readLayer(r *reader, name string) (nn.Layer, error) {
	kind := r.u8()
	switch kind {
	case kindConv:
		dims := r.ints()
		if len(dims) != 6 {
			return nil, fmt.Errorf("graphfile: conv %q has %d params, want 6", name, len(dims))
		}
		inC, outC, kh, kw, stride, pad := dims[0], dims[1], dims[2], dims[3], dims[4], dims[5]
		weights := r.fp16Blob()
		bias := r.fp16Blob()
		if r.err != nil {
			return nil, r.err
		}
		if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
			return nil, fmt.Errorf("graphfile: conv %q has invalid geometry %v", name, dims)
		}
		if len(weights) != outC*inC*kh*kw || len(bias) != outC {
			return nil, fmt.Errorf("graphfile: conv %q weight sizes inconsistent", name)
		}
		return &nn.Conv{
			LayerName: name,
			InC:       inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
			Weights: tensor.FromSlice(weights, outC, inC, kh, kw),
			Bias:    tensor.FromSlice(bias, outC),
		}, nil
	case kindPool:
		dims := r.ints()
		if len(dims) != 4 {
			return nil, fmt.Errorf("graphfile: pool %q has %d params, want 4", name, len(dims))
		}
		flags := dims[3]
		op := nn.MaxPool
		if flags&1 != 0 {
			op = nn.AvgPool
		}
		if flags&4 == 0 && (dims[0] <= 0 || dims[1] <= 0) {
			return nil, fmt.Errorf("graphfile: pool %q has invalid geometry %v", name, dims)
		}
		return &nn.Pool{
			LayerName: name, PoolOp: op,
			K: dims[0], Stride: dims[1], Pad: dims[2],
			CeilMode: flags&2 != 0, Global: flags&4 != 0,
		}, nil
	case kindReLU:
		return &nn.ReLU{LayerName: name}, nil
	case kindLRN:
		dims := r.ints()
		if len(dims) != 1 {
			return nil, fmt.Errorf("graphfile: lrn %q malformed", name)
		}
		return &nn.LRN{
			LayerName: name, Size: dims[0],
			Alpha: f32frombits(r.u32()), Beta: f32frombits(r.u32()), K: f32frombits(r.u32()),
		}, nil
	case kindConcat:
		return &nn.Concat{LayerName: name}, nil
	case kindDropout:
		return &nn.Dropout{LayerName: name, Ratio: f32frombits(r.u32())}, nil
	case kindFC:
		dims := r.ints()
		if len(dims) != 2 {
			return nil, fmt.Errorf("graphfile: fc %q malformed", name)
		}
		inF, outF := dims[0], dims[1]
		weights := r.fp16Blob()
		bias := r.fp16Blob()
		if r.err != nil {
			return nil, r.err
		}
		if inF <= 0 || outF <= 0 {
			return nil, fmt.Errorf("graphfile: fc %q has invalid geometry %v", name, dims)
		}
		if len(weights) != inF*outF || len(bias) != outF {
			return nil, fmt.Errorf("graphfile: fc %q weight sizes inconsistent", name)
		}
		return &nn.FullyConnected{
			LayerName: name, InF: inF, OutF: outF,
			Weights: tensor.FromSlice(weights, outF, inF),
			Bias:    tensor.FromSlice(bias, outF),
		}, nil
	case kindSoftmax:
		return &nn.Softmax{LayerName: name}, nil
	default:
		return nil, fmt.Errorf("graphfile: unknown layer kind %d (%q)", kind, name)
	}
}

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }
