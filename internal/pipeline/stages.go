package pipeline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graphfile"
	"repro/internal/nn"
)

// Stage declares one stage of a model-parallel (split-inference)
// session: a device group that runs one contiguous segment of the
// workload network, streaming its output activations to the next
// stage. Configure a session with WithStages + WithCut, or fill
// Config.Stages/Config.Cuts directly.
type Stage struct {
	// Group is the device group running this stage's segment. All
	// group knobs apply (batch size, stick count, VPU options, custom
	// targets); Weight is ignored — pipeline stages are serial, not
	// dealt.
	Group Group
	// Queue bounds the in-flight window between this stage and the
	// next: at most Queue activations past this stage's input pull and
	// not yet pulled by the next stage. 0 uses the session QueueDepth
	// (default 2). Ignored on the last stage. For an interior CPU/GPU
	// stage the window is floored at the stage's batch size — a full
	// batch must fit in flight or it could never assemble.
	Queue int
	// Replicas widens the stage: instead of one device group, the
	// stage runs as a health-aware Pool of this many identical copies
	// of Group, dealt work by the pool's adaptive routing. The
	// pipeline's serial order and boundary windows are unchanged — a
	// replicated stage is just a wider stage, soaking up a bottleneck
	// segment without recutting the network. 0 or 1 is a single group;
	// custom stages cannot be replicated (one caller-built Target
	// cannot serve as several).
	Replicas int
}

// Replicated returns a copy of the stage widened to n replica groups
// (see Replicas).
func (st Stage) Replicated(n int) Stage {
	st.Replicas = n
	return st
}

// CPUStage declares a pipeline stage on the Caffe-MKL CPU at the
// given batch size.
func CPUStage(batch int) Stage { return Stage{Group: Group{Kind: GroupCPU, Batch: batch}} }

// GPUStage declares a pipeline stage on the Caffe-cuDNN GPU at the
// given batch size.
func GPUStage(batch int) Stage { return Stage{Group: Group{Kind: GroupGPU, Batch: batch}} }

// VPUStage declares a pipeline stage on n Neural Compute Sticks
// running the parallel NCSw pipeline over the stage's segment.
func VPUStage(n int) Stage { return Stage{Group: Group{Kind: GroupVPU, Devices: n}} }

// CustomStage declares a pipeline stage on a caller-provided target,
// used as-is (the target prices whatever cost model it implements —
// the session does not hand it a segment graph).
func CustomStage(t core.Target) Stage { return Stage{Group: Group{Kind: GroupCustom, Target: t}} }

// resolvedStage is one effective stage after segment resolution:
// empty segments are collapsed away before any device is built, so a
// degenerate cut never registers hardware the equivalent single-group
// session would not have.
type resolvedStage struct {
	spec Stage
	// seg is the stage's network segment (nil for custom stages).
	seg *nn.Graph
	// blob is the segment's compiled NCS graph file (VPU stages only).
	blob []byte
	// cut is the whole-network layer index where the segment begins.
	cut int
}

// stageMode reports whether the session runs as a model-parallel
// pipeline (more than one effective stage; single-stage sessions
// collapse to the classic group path).
func (s *Session) stageMode() bool { return len(s.stages) > 0 }

// Pipe returns the stage composite of the current run (nil for
// non-pipeline sessions, or before Run).
func (s *Session) Pipe() *core.Pipeline { return s.pipe }

// Cuts returns the effective whole-network cut indices between the
// session's stages (nil for non-pipeline sessions). Degenerate cuts
// collapse their empty stage, so every returned cut is interior.
func (s *Session) Cuts() []int {
	var cuts []int
	for _, st := range s.stages[1:] {
		cuts = append(cuts, st.cut)
	}
	return cuts
}

// Segments returns the per-stage network segments (nil entries for
// custom stages; nil for non-pipeline sessions).
func (s *Session) Segments() []*nn.Graph {
	var segs []*nn.Graph
	for _, st := range s.stages {
		segs = append(segs, st.seg)
	}
	return segs
}

// resolveStages splits the workload network at the configured cuts
// and collapses empty segments. Stages are resolved before any device
// or blob is built: a session whose cuts leave a single effective
// stage is rewritten into the equivalent classic single-group session
// — same construction order, same event sequence, bit-identical run.
func (s *Session) resolveStages() error {
	specs, cuts := s.cfg.Stages, s.cfg.Cuts
	if len(specs) == 1 {
		// A one-stage pipeline is the classic single-group session.
		s.cfg.Groups = []Group{specs[0].Group}
		s.cfg.Stages, s.cfg.Cuts = nil, nil
		return nil
	}
	n := s.net.Len()
	bounds := make([]int, 0, len(specs)+1)
	bounds = append(bounds, 0)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, n)
	for i, c := range cuts {
		if c < 0 || c > n {
			return fmt.Errorf("pipeline: cut %d out of range [0,%d]", c, n)
		}
		if c < bounds[i] {
			return fmt.Errorf("pipeline: cuts not ascending: %v", cuts)
		}
	}

	var eff []resolvedStage
	remaining := s.net
	base := 0
	for i, spec := range specs {
		lo, hi := bounds[i], bounds[i+1]
		if spec.Group.Kind == GroupCustom {
			// A custom stage prices its own model and carries no network
			// segment, so its span of the partition must be empty.
			if lo != hi {
				return fmt.Errorf("pipeline: stage %d: custom stage cannot consume network layers %d..%d; give it an empty span", i, lo, hi)
			}
			eff = append(eff, resolvedStage{spec: spec, cut: lo})
			continue
		}
		if lo == hi {
			continue // empty segment: collapse the stage away
		}
		var seg *nn.Graph
		if hi == n {
			seg = remaining
			remaining = nil
		} else {
			head, tail, err := remaining.Split(hi - base)
			if err != nil {
				return fmt.Errorf("pipeline: stage %d: %w", i, err)
			}
			seg, remaining = head, tail
		}
		base = hi
		eff = append(eff, resolvedStage{spec: spec, seg: seg, cut: lo})
	}
	if len(eff) == 0 {
		return fmt.Errorf("pipeline: every stage is empty")
	}

	if len(eff) == 1 && eff[0].seg == s.net {
		// One effective stage over the whole network: run the classic
		// single-group session, bit-identical to never having split.
		s.cfg.Groups = []Group{eff[0].spec.Group}
		s.cfg.Stages, s.cfg.Cuts = nil, nil
		return nil
	}

	// Compile each VPU stage's segment. The session-level blob slot
	// keeps the first stage blob so Session.Blob() stays meaningful.
	for i := range eff {
		if eff[i].spec.Group.Kind != GroupVPU {
			continue
		}
		blob, err := graphfile.Compile(eff[i].seg)
		if err != nil {
			return fmt.Errorf("pipeline: compile stage %d segment: %w", i, err)
		}
		eff[i].blob = blob
		if s.blob == nil {
			s.blob = blob
		}
	}
	s.stages = eff
	return nil
}

// validateStages is the construction-time half of stage validation
// (the cut geometry is checked against the network in resolveStages).
func validateStages(cfg *Config) error {
	if len(cfg.Groups) > 0 {
		return fmt.Errorf("pipeline: WithStages is exclusive with device groups (WithCPU/WithGPU/WithVPUs); every stage declares its own group")
	}
	if len(cfg.Cuts) != len(cfg.Stages)-1 {
		return fmt.Errorf("pipeline: %d stages need %d cut(s), got %d", len(cfg.Stages), len(cfg.Stages)-1, len(cfg.Cuts))
	}
	for i, st := range cfg.Stages {
		g := st.Group
		switch g.Kind {
		case GroupCPU, GroupGPU:
			if g.Batch < 1 {
				return fmt.Errorf("pipeline: stage %d: batch size %d", i, g.Batch)
			}
		case GroupVPU:
			if g.Devices < 1 {
				return fmt.Errorf("pipeline: stage %d: %d VPU devices", i, g.Devices)
			}
		case GroupCustom:
			if g.Target == nil {
				return fmt.Errorf("pipeline: stage %d: custom stage needs a Target", i)
			}
		default:
			return fmt.Errorf("pipeline: stage %d: unknown kind %v", i, g.Kind)
		}
		if st.Queue < 0 {
			return fmt.Errorf("pipeline: stage %d: negative queue depth %d", i, st.Queue)
		}
		if st.Replicas < 0 {
			return fmt.Errorf("pipeline: stage %d: negative replica count %d", i, st.Replicas)
		}
		if st.Replicas > 1 && g.Kind == GroupCustom {
			return fmt.Errorf("pipeline: stage %d: a custom stage carries one caller-built Target and cannot be replicated", i)
		}
	}
	if cfg.Functional {
		return fmt.Errorf("pipeline: split inference is pure-performance; functional stage flows are not supported")
	}
	if cfg.Blob != nil {
		return fmt.Errorf("pipeline: WithBlob carries a whole-network graph file; stage segments are compiled per stage")
	}
	if cfg.Hedge.Enabled() {
		return fmt.Errorf("pipeline: hedging duplicates whole inferences across groups; it does not compose with serial stages")
	}
	return nil
}
