package pipeline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tenant"
)

// tenantMix is a three-class tenant registry sized to roughly 70% of
// a two-stick fleet's closed-loop capacity (~9.9 img/s per stick).
func tenantMix() tenant.Config {
	capacity := 9.9 * 2
	return tenant.Config{
		Scheduler: tenant.WeightedFair,
		Tenants: []tenant.Tenant{
			{ID: "gold", Weight: 3, Arrivals: core.PoissonArrivals(0.3 * capacity)},
			{ID: "silver", Weight: 1, Arrivals: core.PoissonArrivals(0.2 * capacity)},
			{ID: "batch", Weight: 1,
				Arrivals: core.BurstyArrivals(0.4*capacity, time.Second, time.Second)},
		},
	}
}

// TestTenantSessionRuns: a tenanted session tags every delivered
// result with its tenant, reports one per-tenant section per declared
// class in registration order, and conserves items between scheduler
// counters and collector totals.
func TestTenantSessionRuns(t *testing.T) {
	const images = 60
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithVPUs(2),
		WithSLO(time.Second),
		WithTenants(tenantMix()),
		WithRetain(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := []string{rep.Tenants[0].ID, rep.Tenants[1].ID, rep.Tenants[2].ID}; len(rep.Tenants) != 3 ||
		got[0] != "gold" || got[1] != "silver" || got[2] != "batch" {
		t.Fatalf("tenant sections %v, want [gold silver batch]", got)
	}
	if rep.TenantScheduler != tenant.WeightedFair.String() {
		t.Errorf("scheduler reported as %q, want %q", rep.TenantScheduler, tenant.WeightedFair)
	}
	completed := 0
	for _, tr := range rep.Tenants {
		if tr.Arrived != tr.Stats.Admitted+tr.Shed+tr.QuotaRejected {
			t.Errorf("tenant %s accounting leak: arrived %d != admitted %d + shed %d + quota %d",
				tr.ID, tr.Arrived, tr.Stats.Admitted, tr.Shed, tr.QuotaRejected)
		}
		completed += tr.Completed
	}
	if completed != rep.Images {
		t.Errorf("per-tenant completions sum to %d, report counts %d images", completed, rep.Images)
	}
	known := map[string]bool{"gold": true, "silver": true, "batch": true}
	for _, r := range rep.Results {
		if !known[r.Tenant] {
			t.Fatalf("result %d delivered with unknown tenant %q", r.Index, r.Tenant)
		}
	}
}

// TestTenantSessionDeterminism: the tenanted session repeats bit for
// bit — same rendered report, same simulated time — across reruns.
func TestTenantSessionDeterminism(t *testing.T) {
	run := func() *Report {
		t.Helper()
		sess, err := New(
			WithDataset(smallDataset(48)),
			WithVPUs(2),
			WithSeed(7),
			WithSLO(time.Second),
			WithTenants(tenantMix()),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() || a.SimTime != b.SimTime {
		t.Errorf("tenanted session not deterministic:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
}

// TestTenantEmptyConfigBitIdentical locks the zero-cost contract: a
// session handed an empty tenant config (no tenants declared) builds
// the exact untenanted path — same rendered report, same simulated
// time as a session that never saw WithTenants.
func TestTenantEmptyConfigBitIdentical(t *testing.T) {
	run := func(opts ...Option) *Report {
		t.Helper()
		base := []Option{WithDataset(smallDataset(32)), WithVPUs(2), WithSeed(3)}
		sess, err := New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run()
	empty := run(WithTenants(tenant.Config{}))
	if plain.String() != empty.String() {
		t.Errorf("empty tenant config diverged from untenanted session:\n--- plain\n%s--- empty\n%s",
			plain.String(), empty.String())
	}
	if plain.SimTime != empty.SimTime {
		t.Errorf("empty tenant config simulated %v, untenanted %v", empty.SimTime, plain.SimTime)
	}
	if len(empty.Tenants) != 0 || empty.TenantScheduler != "" {
		t.Errorf("empty tenant config still reported tenancy: %d tenants, scheduler %q",
			len(empty.Tenants), empty.TenantScheduler)
	}
}

// TestTenantOptionConflicts: tenancy owns the ingress — combining it
// with the single-tenant ingress options is a construction error.
func TestTenantOptionConflicts(t *testing.T) {
	mix := tenantMix()
	bad := []struct {
		name string
		opts []Option
	}{
		{"arrivals", []Option{WithTenants(mix), WithArrivals(core.PoissonArrivals(5))}},
		{"admission", []Option{WithTenants(mix), WithAdmission(8, core.ShedNewest)}},
		{"invalid config", []Option{WithTenants(tenant.Config{Tenants: []tenant.Tenant{{ID: ""}}})}},
	}
	for _, tc := range bad {
		opts := append([]Option{WithDataset(smallDataset(8)), WithVPUs(1)}, tc.opts...)
		if _, err := New(opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
