package pipeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// reloadSession builds the common serving session the reload tests
// drive: CPU batch-8 under steady Poisson overload with a bounded
// ingress, enough virtual seconds that a mid-run swap has work on
// both sides of it.
func reloadSession(t *testing.T, slo time.Duration, depth int) *Session {
	t.Helper()
	sess, err := New(
		WithImages(240),
		WithCPU(8),
		// CPU batch-8 capacity is ≈44 img/s; 55/s keeps a queue.
		WithArrivals(core.PoissonArrivals(55)),
		WithSLO(slo),
		WithAdmission(depth, core.ShedNewest),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestReloadNoopBitIdentical: reloading every knob to its current
// value mid-run must be bit-identical to never reloading — a reload
// consumes no randomness and spawns no process.
func TestReloadNoopBitIdentical(t *testing.T) {
	base := reloadSession(t, 400*time.Millisecond, 16)
	baseRep, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	noop := reloadSession(t, 400*time.Millisecond, 16)
	noop.ScheduleReload(1500*time.Millisecond, func(s *Session) error {
		if err := s.ReloadSLO(400 * time.Millisecond); err != nil {
			return err
		}
		return s.ReloadAdmissionDepth(16)
	})
	noopRep, err := noop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if errs := noop.ReloadErrs(); len(errs) > 0 {
		t.Fatalf("no-op reload failed: %v", errs[0])
	}
	if baseRep.String() != noopRep.String() {
		t.Errorf("no-op reload changed the report:\n--- without ---\n%s\n--- with ---\n%s",
			baseRep.String(), noopRep.String())
	}
}

// TestReloadSLOMidRun: tightening the SLO at T must leave work
// classified before T untouched (better goodput than tight-all-along)
// while judging work after T against the new target (worse goodput
// than never tightening).
func TestReloadSLOMidRun(t *testing.T) {
	const loose, tight = 600 * time.Millisecond, 120 * time.Millisecond
	run := func(slo time.Duration, reloadAt time.Duration, to time.Duration) float64 {
		sess := reloadSession(t, slo, 16)
		if reloadAt > 0 {
			sess.ScheduleReload(reloadAt, func(s *Session) error { return s.ReloadSLO(to) })
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if errs := sess.ReloadErrs(); len(errs) > 0 {
			t.Fatalf("reload failed: %v", errs[0])
		}
		return rep.Goodput
	}
	gLoose := run(loose, 0, 0)
	gTight := run(tight, 0, 0)
	gSwap := run(loose, 2*time.Second, tight)
	if !(gTight < gSwap && gSwap < gLoose) {
		t.Errorf("goodput ordering tight %.3f < swap %.3f < loose %.3f violated",
			gTight, gSwap, gLoose)
	}
}

// TestReloadAdmissionDepthMidRun: shrinking the ingress at T sheds
// more than never shrinking and less than starting shrunk.
func TestReloadAdmissionDepthMidRun(t *testing.T) {
	run := func(depth int, reloadAt time.Duration, to int) int {
		sess := reloadSession(t, 400*time.Millisecond, depth)
		if reloadAt > 0 {
			sess.ScheduleReload(reloadAt, func(s *Session) error { return s.ReloadAdmissionDepth(to) })
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if errs := sess.ReloadErrs(); len(errs) > 0 {
			t.Fatalf("reload failed: %v", errs[0])
		}
		return rep.Admission.Shed + rep.Admission.Expired
	}
	wide := run(16, 0, 0)
	narrow := run(2, 0, 0)
	swap := run(16, 2*time.Second, 2)
	if !(wide < swap && swap < narrow) {
		t.Errorf("drop ordering wide %d < swap %d < narrow %d violated", wide, swap, narrow)
	}
}

// TestReloadHedgeBudget: cutting the hedge budget to zero mid-run
// caps duplicates launched after T — the run hedges less than with
// the budget left alone, and at least as much as never hedging at
// all.
func TestReloadHedgeBudget(t *testing.T) {
	run := func(reloadAt time.Duration, to float64) int {
		sess, err := New(
			WithImages(160),
			WithVPUs(4),
			WithArrivals(core.PoissonArrivals(36)),
			WithSLO(600*time.Millisecond),
			WithHedging(core.HedgeConfig{Trigger: 110 * time.Millisecond, Budget: 0.5}),
		)
		if err != nil {
			t.Fatal(err)
		}
		if reloadAt > 0 {
			sess.ScheduleReload(reloadAt, func(s *Session) error { return s.ReloadHedgeBudget(to) })
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if errs := sess.ReloadErrs(); len(errs) > 0 {
			t.Fatalf("reload failed: %v", errs[0])
		}
		return rep.Hedged
	}
	full := run(0, 0)
	cut := run(2*time.Second, 0.001)
	if full == 0 {
		t.Skip("no hedges fired at full budget; nothing to compare")
	}
	if cut >= full {
		t.Errorf("hedges with mid-run budget cut %d, want < %d (uncut)", cut, full)
	}
}

// TestReloadErrors: a scheduled reload that violates a knob's
// constraints must surface through ReloadErrs, not crash the run.
func TestReloadErrors(t *testing.T) {
	sess, err := New(WithImages(40), WithCPU(8))
	if err != nil {
		t.Fatal(err)
	}
	sess.ScheduleReload(50*time.Millisecond, func(s *Session) error {
		return s.ReloadAdmissionDepth(4) // session has no bounded ingress
	})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	errs := sess.ReloadErrs()
	if len(errs) != 1 {
		t.Fatalf("ReloadErrs = %v, want exactly one error", errs)
	}
	if !strings.Contains(errs[0].Error(), "bounded ingress") {
		t.Errorf("error %q does not explain the constraint", errs[0])
	}
	if !strings.Contains(errs[0].Error(), "reload at 50ms") {
		t.Errorf("error %q does not carry the reload instant", errs[0])
	}
}

// TestReloadValidation: direct knob misuse errors immediately.
func TestReloadValidation(t *testing.T) {
	sess := reloadSession(t, 400*time.Millisecond, 16)
	if err := sess.ReloadSLO(-time.Second); err == nil {
		t.Error("negative SLO accepted")
	}
	if err := sess.ReloadHedgeBudget(-0.1); err == nil {
		t.Error("negative hedge budget accepted")
	}
	if err := sess.ReloadAdmissionDepth(0); err == nil {
		t.Error("zero admission depth accepted")
	}
}
