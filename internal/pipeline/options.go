package pipeline

import (
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/imagenet"
	"repro/internal/nn"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// WithDataset sets the synthetic dataset configuration.
func WithDataset(cfg imagenet.Config) Option {
	return func(c *Config) { c.Dataset = cfg }
}

// WithImages limits the run to the first n dataset images.
func WithImages(n int) Option {
	return func(c *Config) { c.Images = n }
}

// WithFunctional toggles real numeric inference (default off: devices
// pay full simulated costs but skip arithmetic).
func WithFunctional(on bool) Option {
	return func(c *Config) { c.Functional = on }
}

// WithSeed sets the simulation seed for every stochastic component.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithNetSeed sets the network weight seed (default 42).
func WithNetSeed(seed uint64) Option {
	return func(c *Config) { c.NetSeed = seed }
}

// WithRouting selects the scheduler distributing items across device
// groups (default core.RouteWeighted).
func WithRouting(r core.Routing) Option {
	return func(c *Config) { c.Routing = r }
}

// WithQueueDepth bounds the per-group feed queues for the dealt
// routing policies.
func WithQueueDepth(d int) Option {
	return func(c *Config) { c.QueueDepth = d }
}

// WithRetain keeps every per-inference Result on the report.
func WithRetain(on bool) Option {
	return func(c *Config) { c.Retain = on }
}

// WithTimeline attaches a Fig. 4 execution timeline to every group.
func WithTimeline(tl *trace.Timeline) Option {
	return func(c *Config) { c.Timeline = tl }
}

// WithCPU adds a Caffe-MKL CPU group at the given batch size.
func WithCPU(batch int) Option {
	return func(c *Config) { c.Groups = append(c.Groups, Group{Kind: GroupCPU, Batch: batch}) }
}

// WithGPU adds a Caffe-cuDNN GPU group at the given batch size.
func WithGPU(batch int) Option {
	return func(c *Config) { c.Groups = append(c.Groups, Group{Kind: GroupGPU, Batch: batch}) }
}

// WithVPUs adds a group of n Neural Compute Sticks running the
// parallel NCSw pipeline.
func WithVPUs(n int) Option {
	return func(c *Config) { c.Groups = append(c.Groups, Group{Kind: GroupVPU, Devices: n}) }
}

// WithVPUOptions adds a VPU group with explicit pipeline options
// (scheduling, overlap, host overhead).
func WithVPUOptions(n int, opts core.VPUOptions) Option {
	return func(c *Config) {
		c.Groups = append(c.Groups, Group{Kind: GroupVPU, Devices: n, VPUOptions: &opts})
	}
}

// WithTarget adds a custom target as its own device group.
func WithTarget(t core.Target) Option {
	return func(c *Config) { c.Groups = append(c.Groups, Group{Kind: GroupCustom, Target: t}) }
}

// WithGroup adds a fully specified device group (weights, VPU
// overrides).
func WithGroup(g Group) Option {
	return func(c *Config) { c.Groups = append(c.Groups, g) }
}

// WithStages runs the session as a model-parallel pipeline: the
// workload network is split at the WithCut boundaries into one
// segment per stage, each stage runs its segment on its own device
// group (CPUStage/GPUStage/VPUStage/CustomStage), and activations
// stream between stages under bounded in-flight windows with
// backpressure end to end. Mutually exclusive with the device-group
// options; per-stage queue windows come from Stage.Queue.
func WithStages(stages ...Stage) Option {
	return func(c *Config) { c.Stages = append(c.Stages, stages...) }
}

// WithCut sets the whole-network layer boundaries partitioning the
// workload across the WithStages chain (one fewer cut than stages,
// ascending; nn.Graph.ValidCuts enumerates the legal interior
// boundaries). A degenerate cut (0 or the layer count) collapses its
// empty stage, and a single surviving stage runs bit-identical to the
// classic single-group session.
func WithCut(cuts ...int) Option {
	return func(c *Config) { c.Cuts = append(c.Cuts, cuts...) }
}

// WithArrivals wraps the session source in an open-loop arrival
// process (deterministic, Poisson, bursty or trace replay — see the
// core constructors): items become visible at their arrival instants
// instead of on demand, so the report's latency distributions measure
// real queueing under offered load.
func WithArrivals(a core.Arrivals) Option {
	return func(c *Config) { c.Arrivals = a }
}

// WithSLO sets the per-item serving deadline (arrival to completion)
// the session measures goodput against: the report gains per-group
// and aggregate goodput, and a bounded ingress (WithAdmission) drops
// items whose deadline lapses while they queue.
func WithSLO(target time.Duration) Option {
	return func(c *Config) { c.SLO = target }
}

// WithTenants runs the session multi-tenant: each declared tenant
// drives its own open-loop arrival process, the configured scheduler
// (tenant.FIFO, tenant.WeightedFair, tenant.Priority) multiplexes the
// per-tenant queues at the admission edge under each tenant's quotas
// (max in-flight, admitted rate) and shed policy, and the report
// gains a per-tenant section — throughput, latency tails, goodput
// against the tenant's own SLO, sheds, expiries and quota rejections.
// The tenant layer owns the arrival and admission edge, so it is
// mutually exclusive with WithArrivals, WithAdmission and WithStream.
// An empty config leaves the session single-tenant, bit-identical to
// never having called this.
func WithTenants(tc tenant.Config) Option {
	return func(c *Config) { c.Tenants = tc }
}

// WithAdmission bounds the session ingress: an admission queue of the
// given depth sits between the source and the device groups, and
// arrivals that find it full are handled by the overload policy
// (core.ShedNewest, core.ShedOldest, core.Block). With an SLO set,
// items queued past it are dropped as expired instead of wasting
// device time. Shed and expired counts land on the report. Requires
// a paced source (WithArrivals or WithStream): against an eager
// closed-loop dataset the pump would drain everything at t=0 and
// shed all but the first depth items.
func WithAdmission(depth int, policy core.OverloadPolicy) Option {
	return func(c *Config) { c.AdmissionDepth = depth; c.AdmissionPolicy = policy }
}

// WithAdmissionShrink extends the bounded ingress (WithAdmission)
// with health-aware depth: the admission queue subscribes to device
// health and shrinks its effective depth proportionally to healthy
// capacity — ceil(depth × healthy/total), floored at minDepth (0 = 1)
// — so during an outage queued work cannot all expire waiting for
// devices that are gone, and the full bound restores on rejoin.
// Already-queued items are never evicted; new arrivals meet the
// smaller bound. Needs WithAdmission; health transitions come from
// the recovery monitor, so without WithRecovery (or a lethal fault
// plan's default) the bound never moves.
func WithAdmissionShrink(minDepth int) Option {
	return func(c *Config) { c.AdmissionShrink = true; c.AdmissionMinDepth = minDepth }
}

// WithHedging arms speculative hedged requests (the tail-at-scale
// defense): an item in flight longer than the hedge trigger — a fixed
// delay, or a live latency quantile once warm — is duplicated onto a
// different healthy device group (for a lone multi-stick VPU group, a
// different stick), the first completion wins, and the loser is
// withdrawn from its queue or discarded on completion. Results are
// deduplicated before every collector and hook, and the report gains
// hedge accounting (launched, wins, wasted completions). A zero
// HedgeConfig disables hedging; core.HedgeNever arms it without ever
// firing — bit-identical to disabled, the experiment control.
func WithHedging(hc core.HedgeConfig) Option {
	return func(c *Config) { c.Hedge = hc }
}

// WithAdaptiveBatching makes every CPU/GPU group assemble batches
// adaptively: batch size tracks the observed backlog (between 1 and
// the group's configured batch size) and a partial batch closes at
// most maxWait after its first item was pulled — so a lightly loaded
// batch device serves at single-item latency while a saturated one
// keeps full-batch throughput.
func WithAdaptiveBatching(maxWait time.Duration) Option {
	return func(c *Config) { c.BatchMaxWait = maxWait; c.AdaptiveBatch = true }
}

// WithFaults injects the deterministic fault plan into the session's
// devices as the run unfolds: stick hangs, USB link drops, transient
// inference errors and straggler slowdowns, scripted or seeded
// (internal/fault). Device names are "ncs0".."ncsN" for the sticks in
// testbed port order and "cpu"/"gpu" for the batch groups. When the
// plan can kill inferences (hang/drop/transient) and no recovery is
// configured, the session defaults to core.DefaultRecoveryConfig() so
// a hang cannot deadlock the run; the report gains availability
// metrics (outages, MTTR, retries, fault-attributed drops, uptime).
func WithFaults(plan fault.Plan) Option {
	return func(c *Config) { c.Faults = plan }
}

// WithRecovery sets the health-monitoring and self-healing policy of
// every VPU group: Timeout is the completion heartbeat that detects a
// hung or vanished device, Recover re-opens it at the real
// firmware-boot cost (false = fail-stop: the device is abandoned and
// survivors absorb the load), and MaxAttempts bounds redeliveries per
// item — exhausted items are dropped and counted against goodput.
func WithRecovery(rc core.RecoveryConfig) Option {
	return func(c *Config) { c.Recovery = rc }
}

// WithStream replaces the dataset source with a push-style stream of
// the given buffer capacity (0 = unbounded); feed it via
// Session.Stream from a producer process.
func WithStream(capacity int) Option {
	return func(c *Config) { cap := capacity; c.StreamCapacity = &cap }
}

// WithGoogLeNet forces the full BVLC GoogLeNet workload.
func WithGoogLeNet() Option {
	return func(c *Config) { c.Network = NetGoogLeNet }
}

// WithNetwork supplies a prebuilt workload network, used as-is (no
// construction or classifier calibration) — share one network across
// several sessions.
func WithNetwork(g *nn.Graph) Option {
	return func(c *Config) { c.Net = g }
}

// WithBlob supplies a precompiled NCS graph file for the VPU groups,
// skipping per-session compilation; pair with WithNetwork.
func WithBlob(blob []byte) Option {
	return func(c *Config) { c.Blob = blob }
}

// WithMicroNet forces the scaled-down inception network with the
// given geometry.
func WithMicroNet(cfg nn.MicroConfig) Option {
	return func(c *Config) { c.Network = NetMicro; c.Micro = cfg }
}

// WithTemperature overrides the prototype-classifier softmax scale.
func WithTemperature(t float32) Option {
	return func(c *Config) { c.Temperature = t }
}
