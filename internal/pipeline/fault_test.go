package pipeline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestSessionFaultInjectionAndRecovery: a session with a scripted
// stick hang auto-enables recovery, heals the device, completes every
// image, and surfaces the availability metrics on the report.
func TestSessionFaultInjectionAndRecovery(t *testing.T) {
	const n = 30
	plan := fault.Plan{Events: []fault.Event{
		{Device: "ncs0", Kind: fault.StickHang, At: 2200 * time.Millisecond},
	}}
	sess, err := New(
		WithImages(n),
		WithVPUs(2),
		WithFaults(plan),
	)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sess.Run()
	if err != nil {
		t.Fatalf("recovered session errored: %v", err)
	}
	if report.Images != n {
		t.Errorf("completed %d images, want %d", report.Images, n)
	}
	if report.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", report.FaultsInjected)
	}
	if report.Outages != 1 || report.Recovered != 1 {
		t.Errorf("outages=%d recovered=%d, want 1/1", report.Outages, report.Recovered)
	}
	if report.Retries == 0 {
		t.Error("no retries recorded for the hung stick's in-flight items")
	}
	if report.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", report.MTTR)
	}
	if report.Uptime >= 1 || report.Uptime <= 0 {
		t.Errorf("uptime = %.3f, want inside (0, 1) after an outage", report.Uptime)
	}
	vpu := report.Targets[0]
	if vpu.Outages != 1 || vpu.Downtime <= 0 {
		t.Errorf("per-group availability missing: %+v", vpu)
	}
}

// TestSessionFaultsFailStop: with recovery explicitly set to
// fail-stop, the hung stick is abandoned — the run still terminates,
// drops are accounted, and the job error names the device.
func TestSessionFaultsFailStop(t *testing.T) {
	const n = 30
	plan := fault.Plan{Events: []fault.Event{
		{Device: "ncs0", Kind: fault.StickHang, At: 2200 * time.Millisecond},
	}}
	sess, err := New(
		WithImages(n),
		WithVPUs(2),
		WithFaults(plan),
		WithRecovery(core.RecoveryConfig{Timeout: 500 * time.Millisecond, Recover: false}),
	)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sess.Run()
	if err == nil {
		t.Fatal("fail-stop abandonment must surface as a run error")
	}
	if report == nil {
		t.Fatal("fail-stop must still produce a report")
	}
	if report.Images+report.FaultDrops != n {
		t.Errorf("completed %d + dropped %d != %d offered", report.Images, report.FaultDrops, n)
	}
	if report.Recovered != 0 || report.Outages != 1 {
		t.Errorf("outages=%d recovered=%d, want 1/0", report.Outages, report.Recovered)
	}
}

// TestSessionFaultPlanResolution: a plan naming an unknown device
// fails the run with a descriptive error instead of silently
// injecting nothing.
func TestSessionFaultPlanResolution(t *testing.T) {
	sess, err := New(
		WithImages(4),
		WithVPUs(1),
		WithFaults(fault.Plan{Events: []fault.Event{{Device: "ncs9", Kind: fault.StickHang}}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err == nil {
		t.Fatal("plan against an unknown device ran anyway")
	}
}

// TestSessionEmptyPlanMatchesBaseline: monitoring without faults must
// not perturb the simulation — identical throughput and latency to an
// unmonitored session (the resilience experiment's acceptance bar).
func TestSessionEmptyPlanMatchesBaseline(t *testing.T) {
	run := func(opts ...Option) *Report {
		sess, err := New(append([]Option{WithImages(24), WithVPUs(2)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run()
	monitored := run(WithRecovery(core.DefaultRecoveryConfig()))
	if base.Throughput != monitored.Throughput {
		t.Errorf("throughput differs: %.4f vs %.4f", base.Throughput, monitored.Throughput)
	}
	if base.Latency.P99 != monitored.Latency.P99 || base.SimTime != monitored.SimTime {
		t.Errorf("latency/simtime differ: %v/%v vs %v/%v",
			base.Latency.P99, base.SimTime, monitored.Latency.P99, monitored.SimTime)
	}
}
