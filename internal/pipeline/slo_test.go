package pipeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSessionSLOAdmissionReport: a session driven past capacity with
// bounded admission must report coherent goodput/shed accounting —
// every arrival is either served or dropped, goodput counts only
// SLO-met completions, and the rendered report carries the columns.
func TestSessionSLOAdmissionReport(t *testing.T) {
	const images = 120
	sess, err := New(
		WithImages(images),
		WithCPU(8),
		// CPU batch-8 capacity is ≈44 img/s; 90/s is far past the knee.
		WithArrivals(core.PoissonArrivals(90)),
		WithSLO(400*time.Millisecond),
		WithAdmission(8, core.ShedNewest),
		WithAdaptiveBatching(30*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rep.SLO != 400*time.Millisecond {
		t.Errorf("report SLO %v, want 400ms", rep.SLO)
	}
	dropped := rep.Admission.Shed + rep.Admission.Expired
	if rep.Admission.Arrived != images {
		t.Errorf("admission saw %d arrivals, want %d", rep.Admission.Arrived, images)
	}
	if rep.Images+dropped != images {
		t.Errorf("served %d + dropped %d != %d arrivals", rep.Images, dropped, images)
	}
	if dropped == 0 {
		t.Error("nothing dropped at 2x capacity with an 8-deep ingress")
	}
	if rep.Collector.Arrivals() != images {
		t.Errorf("collector accounts %d arrivals, want %d", rep.Collector.Arrivals(), images)
	}
	if rep.Goodput <= 0 || rep.Goodput >= 1 {
		t.Errorf("goodput %.3f, want in (0,1) past the knee", rep.Goodput)
	}
	if want := float64(dropped) / float64(images); rep.ShedRate != want {
		t.Errorf("shed rate %.3f, want %.3f", rep.ShedRate, want)
	}
	for _, tr := range rep.Targets {
		if tr.Goodput < 0 || tr.Goodput > 1 {
			t.Errorf("group %s goodput %.3f out of range", tr.Name, tr.Goodput)
		}
	}
	out := rep.String()
	for _, needle := range []string{"goodput", "slo 400ms", "shed"} {
		if !strings.Contains(out, needle) {
			t.Errorf("report rendering lacks %q:\n%s", needle, out)
		}
	}
}

// TestSessionSLOWithoutAdmission: with an SLO but unbounded ingress,
// nothing is shed and goodput is simply the SLO-met fraction.
func TestSessionSLOWithoutAdmission(t *testing.T) {
	sess, err := New(
		WithImages(60),
		WithCPU(8),
		WithArrivals(core.PoissonArrivals(20)), // well below capacity
		WithSLO(time.Second),
		WithAdaptiveBatching(30*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShedRate != 0 || rep.Admission != (core.AdmissionStats{}) {
		t.Errorf("unbounded session reports drops: shed rate %.3f, admission %+v",
			rep.ShedRate, rep.Admission)
	}
	if rep.Goodput != 1.0 {
		t.Errorf("goodput %.3f, want 1.0 at light load under a 1s SLO", rep.Goodput)
	}
}

// TestSessionOptionValidation: the new options reject broken values.
func TestSessionOptionValidation(t *testing.T) {
	bad := []Option{
		WithSLO(-time.Second),
		WithAdmission(-1, core.ShedNewest),
		WithAdmission(4, core.OverloadPolicy(9)),
		WithAdaptiveBatching(-time.Millisecond),
	}
	for i, opt := range bad {
		if _, err := New(WithImages(10), WithCPU(8), opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
	// Admission against an eager closed-loop dataset would shed the
	// whole set at t=0; the session must refuse the combination.
	if _, err := New(WithImages(10), WithCPU(8), WithAdmission(4, core.ShedNewest)); err == nil {
		t.Error("admission without a paced source accepted")
	}
	if _, err := New(WithImages(10), WithCPU(8), WithStream(0), WithAdmission(4, core.ShedNewest)); err != nil {
		t.Errorf("admission over a stream rejected: %v", err)
	}
}
