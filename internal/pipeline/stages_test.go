package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

// googleNetCuts returns the valid interior cut indices of the default
// GoogLeNet workload (the boundary set stage sessions split at).
func googleNetCuts(t *testing.T) []int {
	t.Helper()
	cuts := nn.NewGoogLeNet(rng.New(42)).ValidCuts()
	if len(cuts) == 0 {
		t.Fatal("GoogLeNet has no valid cuts")
	}
	return cuts
}

// TestStageSessionRuns: a VPU-head + GPU-tail split session classifies
// every image exactly once through both stages and reports pipeline
// metadata.
func TestStageSessionRuns(t *testing.T) {
	const images = 48
	cuts := googleNetCuts(t)
	cut := cuts[len(cuts)/2]
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithStages(VPUStage(2), GPUStage(16)),
		WithCut(cut),
		WithRetain(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Cuts(); len(got) != 1 || got[0] != cut {
		t.Fatalf("Cuts() = %v, want [%d]", got, cut)
	}
	segs := sess.Segments()
	if len(segs) != 2 || segs[0].Len()+segs[1].Len() != nn.NewGoogLeNet(rng.New(42)).Len() {
		t.Fatalf("segments %v do not partition the network", segs)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != images {
		t.Errorf("report images = %d, want %d", rep.Images, images)
	}
	if !rep.Pipeline || len(rep.Cuts) != 1 || rep.Cuts[0] != cut {
		t.Errorf("report pipeline metadata: pipeline=%v cuts=%v", rep.Pipeline, rep.Cuts)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("report has %d stages, want 2", len(rep.Targets))
	}
	// Serial stages: every stage processes every image.
	for _, tr := range rep.Targets {
		if tr.Images != images {
			t.Errorf("stage %s processed %d images, want %d", tr.Name, tr.Images, images)
		}
	}
	if rep.Throughput <= 0 {
		t.Errorf("pipeline throughput %g", rep.Throughput)
	}
	seen := map[int]int{}
	for _, r := range rep.Results {
		seen[r.Index]++
	}
	if len(seen) != images {
		t.Errorf("%d distinct results, want %d (final stage only)", len(seen), images)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("item %d delivered %d times", idx, n)
		}
	}
}

// TestStageReplicas: a stage widened into a replica pool still
// delivers every image exactly once, registers the extra hardware,
// runs deterministically, and outpaces its unreplicated twin when the
// widened stage is the bottleneck.
func TestStageReplicas(t *testing.T) {
	const images = 48
	cuts := googleNetCuts(t)
	cut := cuts[len(cuts)/2]
	run := func(head Stage) *Report {
		t.Helper()
		sess, err := New(
			WithDataset(smallDataset(images)),
			WithStages(head, GPUStage(16)),
			WithCut(cut),
			WithRetain(true),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	single := run(VPUStage(1))
	wide := run(VPUStage(1).Replicated(3))
	seen := map[int]int{}
	for _, r := range wide.Results {
		seen[r.Index]++
	}
	if len(seen) != images {
		t.Errorf("%d distinct results, want %d", len(seen), images)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("item %d delivered %d times", idx, n)
		}
	}
	for _, tr := range wide.Targets {
		if tr.Images != images {
			t.Errorf("stage %s processed %d images, want %d", tr.Name, tr.Images, images)
		}
	}
	// Three replica sticks beat one when the VPU head is the
	// bottleneck.
	if wide.Throughput <= single.Throughput {
		t.Errorf("3-replica head throughput %.2f not above single head %.2f",
			wide.Throughput, single.Throughput)
	}
	// Determinism: the replicated session repeats bit for bit.
	again := run(VPUStage(1).Replicated(3))
	if wide.String() != again.String() || wide.SimTime != again.SimTime {
		t.Error("replicated stage session is not deterministic across reruns")
	}
	// A custom stage cannot be replicated.
	if _, err := New(
		WithDataset(smallDataset(images)),
		WithStages(CustomStage(&stubStageTarget{}).Replicated(2), GPUStage(16)),
		WithCut(0),
	); err == nil {
		t.Error("replicated custom stage accepted")
	}
}

// TestStageDegenerateCollapse locks the degenerate-cut contract: a
// two-stage session cut at 0 or at the layer count collapses the
// empty stage before any device is built and must be bit-identical —
// same rendered report, same simulated time — to the classic
// single-group session it degenerates to.
func TestStageDegenerateCollapse(t *testing.T) {
	const images = 24
	n := nn.NewGoogLeNet(rng.New(42)).Len()
	run := func(opts ...Option) (*Report, error) {
		base := []Option{WithDataset(smallDataset(images))}
		sess, err := New(append(base, opts...)...)
		if err != nil {
			return nil, err
		}
		return sess.Run()
	}

	// cut = Len: the GPU tail is empty; the whole network runs on the
	// VPU stage exactly like a plain 2-stick session.
	stageRep, err := run(WithStages(VPUStage(2), GPUStage(16)), WithCut(n))
	if err != nil {
		t.Fatal(err)
	}
	classicRep, err := run(WithVPUs(2))
	if err != nil {
		t.Fatal(err)
	}
	if stageRep.Pipeline {
		t.Error("degenerate cut still reported as pipeline")
	}
	if got, want := stageRep.String(), classicRep.String(); got != want {
		t.Errorf("cut=%d report diverged from classic VPU session:\n--- stage\n%s--- classic\n%s", n, got, want)
	}
	if stageRep.SimTime != classicRep.SimTime {
		t.Errorf("cut=%d simulated time %v, classic %v", n, stageRep.SimTime, classicRep.SimTime)
	}

	// cut = 0: the VPU head is empty; no stick, no USB testbed, no
	// blob — identical to a plain GPU session.
	stageRep, err = run(WithStages(VPUStage(2), GPUStage(16)), WithCut(0))
	if err != nil {
		t.Fatal(err)
	}
	classicRep, err = run(WithGPU(16))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stageRep.String(), classicRep.String(); got != want {
		t.Errorf("cut=0 report diverged from classic GPU session:\n--- stage\n%s--- classic\n%s", got, want)
	}
	if stageRep.SimTime != classicRep.SimTime {
		t.Errorf("cut=0 simulated time %v, classic %v", stageRep.SimTime, classicRep.SimTime)
	}
}

// TestStageSessionDeterminism: same seed, same configuration ⇒ the
// rendered report and simulated time repeat exactly.
func TestStageSessionDeterminism(t *testing.T) {
	cuts := googleNetCuts(t)
	run := func() (*Report, error) {
		sess, err := New(
			WithDataset(smallDataset(32)),
			WithStages(VPUStage(2), CPUStage(8)),
			WithCut(cuts[0]),
			WithSeed(7),
		)
		if err != nil {
			return nil, err
		}
		return sess.Run()
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || a.SimTime != b.SimTime {
		t.Errorf("stage session not deterministic:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
}

// TestStageThreeWay: a three-stage chain (VPU → CPU → GPU) over two
// cuts conserves items across all three segments.
func TestStageThreeWay(t *testing.T) {
	const images = 24
	cuts := googleNetCuts(t)
	if len(cuts) < 2 {
		t.Skip("need two valid cuts")
	}
	c1, c2 := cuts[0], cuts[len(cuts)-1]
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithStages(VPUStage(2), CPUStage(8), GPUStage(16)),
		WithCut(c1, c2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 3 {
		t.Fatalf("%d stages, want 3", len(rep.Targets))
	}
	for _, tr := range rep.Targets {
		if tr.Images != images {
			t.Errorf("stage %s processed %d, want %d", tr.Name, tr.Images, images)
		}
	}
}

// TestStageValidation: the stage-mode configuration errors fire at
// construction.
func TestStageValidation(t *testing.T) {
	bad := []struct {
		name string
		opts []Option
	}{
		{"stages+groups", []Option{WithGPU(8), WithStages(VPUStage(1), GPUStage(8)), WithCut(10)}},
		{"missing cut", []Option{WithStages(VPUStage(1), GPUStage(8))}},
		{"extra cuts", []Option{WithStages(VPUStage(1), GPUStage(8)), WithCut(1, 2)}},
		{"descending cuts", []Option{WithStages(VPUStage(1), CPUStage(8), GPUStage(8)), WithCut(20, 10)}},
		{"invalid cut point", []Option{WithStages(VPUStage(1), GPUStage(8)), WithCut(3)}}, // inside conv1 stem? index 3 is mid-branch only if invalid; checked below
		{"functional", []Option{WithFunctional(true), WithStages(VPUStage(1), GPUStage(8)), WithCut(10)}},
		{"hedged", []Option{WithHedging(core.HedgeConfig{Trigger: core.HedgeNever}), WithStages(VPUStage(2), GPUStage(8)), WithCut(10)}},
		{"blob", []Option{WithBlob([]byte{1}), WithStages(VPUStage(1), GPUStage(8)), WithCut(10)}},
		{"custom with span", []Option{WithStages(CustomStage(&stubStageTarget{}), GPUStage(8)), WithCut(10)}},
	}
	valid := map[int]bool{}
	for _, c := range googleNetCuts(t) {
		valid[c] = true
	}
	for _, tc := range bad {
		if tc.name == "invalid cut point" {
			// Pick a genuinely invalid interior cut for this case.
			invalid := -1
			n := nn.NewGoogLeNet(rng.New(42)).Len()
			for c := 1; c < n; c++ {
				if !valid[c] {
					invalid = c
					break
				}
			}
			if invalid < 0 {
				continue
			}
			tc.opts = []Option{WithStages(VPUStage(1), GPUStage(8)), WithCut(invalid)}
		}
		if _, err := New(append([]Option{WithDataset(smallDataset(8))}, tc.opts...)...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// stubStageTarget is a minimal custom target for validation tests.
type stubStageTarget struct{}

func (s *stubStageTarget) Name() string      { return "stub" }
func (s *stubStageTarget) TDPWatts() float64 { return 1 }
func (s *stubStageTarget) Start(env *sim.Env, src core.Source, sink func(core.Result)) *core.Job {
	job := &core.Job{}
	env.Process("stub", func(p *sim.Proc) {
		for {
			if _, ok := src.Next(p); !ok {
				break
			}
		}
		job.Finish(p)
	})
	return job
}
