// Package pipeline is the declarative session layer over the NCSw
// framework (internal/core): one Session owns the whole lifecycle
// every caller used to hand-wire — simulation environment, synthetic
// dataset, network construction and calibration, graph compilation,
// USB testbed assembly, target construction, result collection — and
// runs heterogeneous device groups (CPU, GPU, multi-VPU, custom
// targets) over a shared or partitioned source under a pluggable
// routing policy (core.Pool). It returns a unified Report with
// per-target and aggregate statistics.
//
// A heterogeneous run, in full:
//
//	sess, err := pipeline.New(
//		pipeline.WithImages(400),
//		pipeline.WithCPU(8),
//		pipeline.WithGPU(8),
//		pipeline.WithVPUs(4),
//		pipeline.WithRouting(core.RouteWeighted),
//	)
//	report, err := sess.Run()
//
// The Session builds everything eagerly in New, so callers can reach
// the environment, dataset, network or stream before Run — the escape
// hatches the cmd tools use for folder sources and MPI-style
// producers.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/fault"
	"repro/internal/graphfile"
	"repro/internal/imagenet"
	"repro/internal/ncs"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/usb"
)

// GroupKind identifies the device family of a group.
type GroupKind int

const (
	// GroupCPU is the Caffe-MKL batch baseline.
	GroupCPU GroupKind = iota
	// GroupGPU is the Caffe-cuDNN batch baseline.
	GroupGPU
	// GroupVPU is a set of Neural Compute Sticks driven by the
	// parallel NCSw pipeline.
	GroupVPU
	// GroupCustom wraps a caller-provided core.Target.
	GroupCustom
)

// String names the kind.
func (k GroupKind) String() string {
	switch k {
	case GroupCPU:
		return "cpu"
	case GroupGPU:
		return "gpu"
	case GroupVPU:
		return "vpu"
	case GroupCustom:
		return "custom"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Group declares one device group of the session.
type Group struct {
	// Kind selects the device family.
	Kind GroupKind
	// Batch is the CPU/GPU batch size (default 8).
	Batch int
	// Devices is the VPU stick count (default 1).
	Devices int
	// Weight is the group's routing weight for static and weighted
	// routing; 0 means unset. When any group sets a weight, unset
	// groups default to 1.
	Weight float64
	// SeedLabel, when set, derives this group's batch-engine seed from
	// the session seed by label — rng.New(Seed).Derive(SeedLabel) —
	// instead of using the session seed directly. Hand-wired benches
	// decorrelate per-run jitter streams this way ("serving/cpu-b8/
	// run/load1.10"); the label lets a declarative session reproduce
	// such a run bit for bit. CPU/GPU groups only (VPU sticks draw
	// from the shared testbed seed).
	SeedLabel string
	// VPUOptions overrides the multi-VPU pipeline settings for this
	// group (Functional and Timeline are managed by the session).
	VPUOptions *core.VPUOptions
	// Target is the custom target for GroupCustom.
	Target core.Target
}

// NetworkKind selects which network the session classifies with.
type NetworkKind int

const (
	// NetAuto picks NetMicro for functional sessions (real inference
	// wants the calibrated prototype classifier) and NetGoogLeNet for
	// pure-performance sessions (the paper's timing workload).
	NetAuto NetworkKind = iota
	// NetGoogLeNet is the full BVLC GoogLeNet.
	NetGoogLeNet
	// NetMicro is the scaled-down inception network with the
	// prototype classifier calibrated against the dataset.
	NetMicro
)

// Config is the resolved session description. Build one with options
// through New, or fill it directly and call NewFromConfig.
type Config struct {
	// Dataset parameterizes the synthetic validation set.
	Dataset imagenet.Config
	// Images is how many dataset images to classify (0 = all).
	Images int
	// Functional enables real numeric inference; otherwise devices
	// pay full simulated costs but skip arithmetic.
	Functional bool
	// Network selects the workload network.
	Network NetworkKind
	// Net, when set, is used as the workload network as-is (no
	// construction, no classifier calibration) — the inbound escape
	// hatch for sharing one network across several sessions.
	Net *nn.Graph
	// Blob, when set, is used as the compiled NCS graph file instead
	// of compiling Net — pair it with Net when running many sessions
	// over the same workload.
	Blob []byte
	// Micro parameterizes the micro network (zero value = defaults).
	Micro nn.MicroConfig
	// Temperature is the prototype-classifier softmax scale
	// (0 = the calibrated default, 150).
	Temperature float32
	// Seed drives every stochastic component of the run.
	Seed uint64
	// NetSeed seeds the network weights (0 = the conventional 42 the
	// accuracy experiments were calibrated with).
	NetSeed uint64
	// Routing selects the device-group scheduler (default
	// core.RouteWeighted, the adaptive throughput-chasing policy).
	Routing core.Routing
	// QueueDepth bounds the per-group feed queues (0 = default 2).
	QueueDepth int
	// Retain keeps every Result on the report.
	Retain bool
	// Timeline receives Fig. 4 spans when set.
	Timeline *trace.Timeline
	// StreamCapacity, when non-nil, replaces the dataset source with
	// a push-style stream of that buffer capacity (0 = unbounded);
	// drive it through Session.Stream.
	StreamCapacity *int
	// Arrivals, when set, wraps the session source in an open-loop
	// arrival process (core.ArrivalSource): items become visible at
	// their arrival instants instead of on demand, turning the run
	// from a drain-the-dataset throughput measurement into a serving
	// measurement with meaningful queueing delay. Seeded from Seed.
	Arrivals core.Arrivals
	// ArrivalLabel overrides the label the arrival stream's seed is
	// derived under (default "arrivals"): the stream draws from
	// rng.New(Seed).Derive(ArrivalLabel). Hand-wired benches pin
	// arrival sequences to labels like "slo/cpu-b8/load1.10" so every
	// serving edge faces identical traffic; the override lets a
	// declarative session replay exactly that traffic.
	ArrivalLabel string
	// SLO is the per-item serving deadline (arrival to completion)
	// goodput is measured against; 0 disables goodput accounting.
	SLO time.Duration
	// Tenants, when it declares any tenant, runs the session
	// multi-tenant: each tenant drives its own arrival process, the
	// configured scheduler (FIFO, weighted-fair, strict-priority)
	// multiplexes the per-tenant queues at the admission edge under
	// the tenants' quotas and shed policies, and the report gains
	// per-tenant accounting. Tenants own the arrival and admission
	// edge, so it is mutually exclusive with Arrivals, WithAdmission
	// and WithStream. The zero value keeps the session single-tenant
	// and bit-identical to pre-tenancy runs.
	Tenants tenant.Config
	// AdmissionDepth, when positive, bounds the session ingress with
	// an admission queue of that depth between the source and the
	// device groups; arrivals beyond it are handled by
	// AdmissionPolicy, and items queued past the SLO are dropped as
	// expired. 0 leaves ingress unbounded (the pre-admission
	// behavior).
	AdmissionDepth int
	// AdmissionPolicy selects the overload behavior of the bounded
	// ingress (default core.ShedNewest).
	AdmissionPolicy core.OverloadPolicy
	// AdmissionShrink subscribes the bounded ingress to device-pool
	// health: during an outage the effective admission depth shrinks
	// proportionally to healthy capacity (so queued work cannot all
	// expire waiting for devices that are gone) and restores on
	// rejoin. Needs AdmissionDepth > 0; without health monitoring
	// (Recovery/Faults) it never fires and is inert.
	AdmissionShrink bool
	// AdmissionMinDepth floors the health-shrunk effective depth
	// (0 = 1). Only meaningful with AdmissionShrink.
	AdmissionMinDepth int
	// Hedge arms speculative hedged requests (core.HedgeConfig): an
	// item in flight past the hedge trigger is duplicated onto a
	// different healthy device group (or, for a single multi-stick VPU
	// group, a different stick), the first completion wins, and the
	// loser is cancelled or discarded with full dedup accounting. The
	// zero value disables hedging and keeps runs bit-identical to
	// pre-hedging sessions.
	Hedge core.HedgeConfig
	// BatchMaxWait bounds batch assembly on every CPU/GPU group: a
	// partial batch closes when no further item arrives within the
	// wait. 0 keeps the classic fill-to-batch-size gather.
	BatchMaxWait time.Duration
	// AdaptiveBatch sizes every CPU/GPU group's batches from the
	// observed backlog (between 1 and the group's batch size) instead
	// of always assembling full batches.
	AdaptiveBatch bool
	// Faults is the deterministic fault-injection plan driven into the
	// session's devices as the run unfolds (internal/fault). Device
	// names: NCS sticks are "ncs0".."ncsN" in testbed port order;
	// batch groups are "cpu"/"gpu" (numbered "cpu2", "cpu3", … when a
	// kind repeats). The zero value injects nothing.
	Faults fault.Plan
	// Recovery configures health monitoring and self-healing on every
	// VPU group (core.RecoveryConfig; the session wires the hooks into
	// its collectors). Zero value: disabled — unless Faults contains
	// hang/drop/transient faults, in which case the session defaults
	// to core.DefaultRecoveryConfig() so an injected hang cannot
	// deadlock the simulation.
	Recovery core.RecoveryConfig
	// Groups are the device groups (at least one, unless Stages is
	// set).
	Groups []Group
	// Stages, when set, runs the session as a model-parallel pipeline
	// (core.Pipeline): the network is split at Cuts into one segment
	// per stage, each stage runs its segment on its own device group,
	// and activations stream between stages under bounded in-flight
	// windows. Mutually exclusive with Groups; see WithStages.
	Stages []Stage
	// Cuts are the whole-network layer boundaries partitioning the
	// workload across Stages (len(Stages)-1 ascending indices into
	// [0, Len]; nn.Graph.ValidCuts enumerates the legal interior
	// ones). Degenerate cuts (0 or Len) collapse their empty stage —
	// a single surviving stage runs as the classic single-group
	// session, bit-identical to never having split.
	Cuts []int
}

// DefaultTemperature is the calibrated prototype-classifier softmax
// scale (see internal/bench).
const DefaultTemperature = 150.0

// Option mutates the Config under construction.
type Option func(*Config)

// Session owns one classification run: environment, dataset, network,
// compiled graph, devices and targets, built eagerly so they can be
// inspected or adjusted before Run.
type Session struct {
	cfg       Config
	env       *sim.Env
	ds        *imagenet.Dataset
	net       *nn.Graph
	blob      []byte
	devices   []*ncs.Device // all sticks, in testbed port order
	targets   []core.Target
	perVPU    [][]*ncs.Device // sticks per group index (nil for non-VPU)
	stream    *core.StreamSource
	source    core.Source
	admission *core.AdmissionQueue
	registry  fault.Registry // device name -> injection hooks
	faultLog  *fault.Log
	// pool is the device-group composite of the current run (nil for
	// single-group sessions); the recovery drop hooks consult its
	// hedge state so a lost duplicate is not miscounted as a loss.
	pool *core.Pool
	// stages are the effective pipeline stages after segment
	// resolution (nil for classic group sessions); pipe is their
	// composite, set by Run. The recovery drop hooks release a dropped
	// item's boundary credit through it.
	stages []resolvedStage
	pipe   *core.Pipeline
	// merged/perGroup are set by Run before the simulation starts, so
	// the recovery hooks installed at build time can reach them.
	merged   *core.Collector
	perGroup []*core.Collector
	// Multi-tenant state (nil/empty unless Config.Tenants declares
	// tenants): the admission-edge scheduler, one collector per tenant
	// in registration order, and the ID -> index map the sinks and
	// drop hooks route through.
	tenantMux      *core.TenantMux
	perTenant      []*core.Collector
	perTenantSinks []func(core.Result)
	tenantIdx      map[string]int
	// reloadErrs collects failures of scheduled hot-reloads
	// (ScheduleReload); they fire inside env.Run.
	reloadErrs []error
	ran        bool
}

// New builds a session from options.
func New(opts ...Option) (*Session, error) {
	cfg := Config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewFromConfig(cfg)
}

// NewFromConfig builds a session from an explicit configuration.
func NewFromConfig(cfg Config) (*Session, error) {
	applyDefaults(&cfg)
	if err := validate(&cfg); err != nil {
		return nil, err
	}

	s := &Session{cfg: cfg, env: sim.NewEnv()}

	ds, err := imagenet.New(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("pipeline: dataset: %w", err)
	}
	s.ds = ds
	if cfg.Images == 0 {
		s.cfg.Images = ds.Len()
	} else if cfg.Images > ds.Len() {
		return nil, fmt.Errorf("pipeline: %d images requested, dataset has %d", cfg.Images, ds.Len())
	}

	if err := s.buildNetwork(); err != nil {
		return nil, err
	}
	if err := s.buildTargets(); err != nil {
		return nil, err
	}

	if cfg.StreamCapacity != nil {
		s.stream = core.NewStreamSource(s.env, *cfg.StreamCapacity)
		s.source = s.stream
	}
	return s, nil
}

func applyDefaults(cfg *Config) {
	if cfg.Dataset == (imagenet.Config{}) {
		cfg.Dataset = imagenet.DefaultConfig()
	}
	if cfg.Temperature == 0 {
		cfg.Temperature = DefaultTemperature
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NetSeed == 0 {
		cfg.NetSeed = 42
	}
	if cfg.Micro == (nn.MicroConfig{}) {
		cfg.Micro = nn.DefaultMicroConfig()
	}
	if cfg.Network == NetAuto {
		if cfg.Functional {
			cfg.Network = NetMicro
		} else {
			cfg.Network = NetGoogLeNet
		}
	}
	// A plan that can hang or kill a device needs health monitoring on
	// the serving side, or the simulation would deadlock on the first
	// hang; default the policy fields on rather than hand users a
	// footgun. An explicit WithRecovery timeout wins, and user hooks
	// (OnRetry/OnDrop/OnOutage) are preserved either way.
	if cfg.Faults.NeedsRecovery() && cfg.Recovery.Timeout == 0 {
		def := core.DefaultRecoveryConfig()
		cfg.Recovery.Timeout = def.Timeout
		cfg.Recovery.Recover = def.Recover
		if cfg.Recovery.MaxAttempts == 0 {
			cfg.Recovery.MaxAttempts = def.MaxAttempts
		}
	}
	for i := range cfg.Groups {
		g := &cfg.Groups[i]
		switch g.Kind {
		case GroupCPU, GroupGPU:
			if g.Batch == 0 {
				g.Batch = 8
			}
		case GroupVPU:
			if g.Devices == 0 {
				g.Devices = 1
			}
		}
	}
	for i := range cfg.Stages {
		g := &cfg.Stages[i].Group
		switch g.Kind {
		case GroupCPU, GroupGPU:
			if g.Batch == 0 {
				g.Batch = 8
			}
		case GroupVPU:
			if g.Devices == 0 {
				g.Devices = 1
			}
		}
	}
}

func validate(cfg *Config) error {
	if len(cfg.Stages) > 0 {
		if err := validateStages(cfg); err != nil {
			return err
		}
	} else if len(cfg.Groups) == 0 {
		return fmt.Errorf("pipeline: session needs at least one device group (WithCPU/WithGPU/WithVPUs/WithTarget) or stage chain (WithStages)")
	}
	if cfg.Images < 0 {
		return fmt.Errorf("pipeline: negative image count %d", cfg.Images)
	}
	for i, g := range cfg.Groups {
		switch g.Kind {
		case GroupCPU, GroupGPU:
			if g.Batch < 1 {
				return fmt.Errorf("pipeline: group %d: batch size %d", i, g.Batch)
			}
		case GroupVPU:
			if g.Devices < 1 {
				return fmt.Errorf("pipeline: group %d: %d VPU devices", i, g.Devices)
			}
		case GroupCustom:
			if g.Target == nil {
				return fmt.Errorf("pipeline: group %d: custom group needs a Target", i)
			}
		default:
			return fmt.Errorf("pipeline: group %d: unknown kind %v", i, g.Kind)
		}
		if g.Weight < 0 {
			return fmt.Errorf("pipeline: group %d: negative weight %g", i, g.Weight)
		}
	}
	if cfg.StreamCapacity != nil && *cfg.StreamCapacity < 0 {
		return fmt.Errorf("pipeline: negative stream capacity %d", *cfg.StreamCapacity)
	}
	if cfg.SLO < 0 {
		return fmt.Errorf("pipeline: negative SLO %v", cfg.SLO)
	}
	if cfg.Tenants.Enabled() {
		if err := cfg.Tenants.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		// The tenant scheduler owns both the arrival edge (one pump
		// per tenant lane) and the admission edge (per-tenant queues,
		// quotas, shed policies), so the single-tenant equivalents
		// cannot compose with it.
		if cfg.Arrivals != nil {
			return fmt.Errorf("pipeline: tenant lanes own their arrival processes; WithTenants excludes WithArrivals")
		}
		if cfg.StreamCapacity != nil {
			return fmt.Errorf("pipeline: tenant lanes pace the source themselves; WithTenants excludes WithStream")
		}
		if cfg.AdmissionDepth > 0 {
			return fmt.Errorf("pipeline: the tenant scheduler is the admission edge; WithTenants excludes WithAdmission")
		}
	}
	if cfg.AdmissionDepth < 0 {
		return fmt.Errorf("pipeline: negative admission depth %d", cfg.AdmissionDepth)
	}
	if cfg.AdmissionDepth > 0 && cfg.Arrivals == nil && cfg.StreamCapacity == nil {
		// Against an eager closed-loop source the admission pump would
		// drain the whole dataset at t=0 and shed everything beyond
		// the queue depth before any device runs.
		return fmt.Errorf("pipeline: admission control needs a paced source (WithArrivals or WithStream)")
	}
	if cfg.AdmissionPolicy < core.ShedNewest || cfg.AdmissionPolicy > core.Block {
		return fmt.Errorf("pipeline: unknown admission policy %v", cfg.AdmissionPolicy)
	}
	if cfg.AdmissionShrink && cfg.AdmissionDepth == 0 {
		return fmt.Errorf("pipeline: admission shrink needs a bounded ingress (WithAdmission)")
	}
	if cfg.AdmissionMinDepth < 0 {
		return fmt.Errorf("pipeline: negative admission min-depth %d", cfg.AdmissionMinDepth)
	}
	if err := cfg.Hedge.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if cfg.Hedge.Enabled() {
		if len(cfg.Groups) == 1 {
			g := cfg.Groups[0]
			if g.Kind != GroupVPU || g.Devices < 2 {
				return fmt.Errorf("pipeline: hedging a single group needs a multi-stick VPU group (got %v)", g.Kind)
			}
		} else if cfg.Routing == core.RouteWorkStealing {
			return fmt.Errorf("pipeline: hedging needs per-group feeds; routing %v shares the source directly", cfg.Routing)
		}
	}
	if cfg.BatchMaxWait < 0 {
		return fmt.Errorf("pipeline: negative batch max-wait %v", cfg.BatchMaxWait)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if cfg.Recovery.Timeout < 0 {
		return fmt.Errorf("pipeline: negative recovery timeout %v", cfg.Recovery.Timeout)
	}
	if cfg.Recovery.MaxAttempts < 0 {
		return fmt.Errorf("pipeline: negative recovery attempt budget %d", cfg.Recovery.MaxAttempts)
	}
	return nil
}

// buildNetwork constructs (and for the micro network calibrates) the
// workload graph, then compiles the NCS blob when a VPU group needs
// it. A caller-provided Net/Blob short-circuits the respective step.
func (s *Session) buildNetwork() error {
	if s.cfg.Net != nil {
		s.net = s.cfg.Net
	} else {
		switch s.cfg.Network {
		case NetMicro:
			s.net = nn.NewMicroGoogLeNet(s.cfg.Micro, rng.New(s.cfg.NetSeed))
			if err := nn.CalibrateClassifier(s.net, nn.MicroClassifierName, nn.MicroPoolName,
				s.ds.PreprocessedPrototypes(), s.cfg.Temperature); err != nil {
				return fmt.Errorf("pipeline: calibrate classifier: %w", err)
			}
		case NetGoogLeNet:
			s.net = nn.NewGoogLeNet(rng.New(s.cfg.NetSeed))
		default:
			return fmt.Errorf("pipeline: unknown network kind %v", s.cfg.Network)
		}
	}
	if len(s.cfg.Stages) > 0 {
		// Segment resolution happens before any blob or device exists:
		// degenerate cuts collapse here, so a single surviving stage
		// takes the classic path below with nothing extra built.
		if err := s.resolveStages(); err != nil {
			return err
		}
	}
	for _, g := range s.cfg.Groups {
		if g.Kind == GroupVPU {
			if s.cfg.Blob != nil {
				s.blob = s.cfg.Blob
				break
			}
			blob, err := graphfile.Compile(s.net)
			if err != nil {
				return fmt.Errorf("pipeline: compile graph: %w", err)
			}
			s.blob = blob
			break
		}
	}
	return nil
}

// buildTargets assembles the USB testbed (all sticks of all VPU
// groups share the paper's Fig. 5 topology) and one target per group.
// Each target family is seeded exactly the way the hand-wired
// constructors seed it, so a session run is bit-identical to the
// equivalent manual setup.
func (s *Session) buildTargets() error {
	s.registry = fault.Registry{}
	groups := make([]Group, 0, len(s.cfg.Groups)+len(s.stages))
	if s.stageMode() {
		for _, st := range s.stages {
			groups = append(groups, st.spec.Group)
		}
	} else {
		groups = append(groups, s.cfg.Groups...)
	}
	// A replicated stage occupies one copy of its group per replica
	// (classic sessions and unreplicated stages count once).
	reps := make([]int, len(groups))
	for i := range reps {
		reps[i] = 1
		if s.stageMode() {
			if r := s.stages[i].spec.Replicas; r > 1 {
				reps[i] = r
			}
		}
	}
	totalSticks := 0
	for i, g := range groups {
		if g.Kind == GroupVPU {
			totalSticks += g.Devices * reps[i]
		}
	}
	var ports []*usb.Port
	if totalSticks > 0 {
		var err error
		_, ports, err = usb.Testbed(s.env, usb.DefaultConfig(), totalSticks)
		if err != nil {
			return fmt.Errorf("pipeline: usb testbed: %w", err)
		}
		deviceSeed := rng.New(s.cfg.Seed)
		s.devices = make([]*ncs.Device, totalSticks)
		for i, port := range ports {
			d, err := ncs.NewDevice(s.env, port.Name(), port, ncs.DefaultConfig(), deviceSeed)
			if err != nil {
				return fmt.Errorf("pipeline: ncs device: %w", err)
			}
			s.devices[i] = d
			// A stick registers with its port, so a Slowdown degrades
			// both the SHAVE clock and the USB link.
			s.registry.Add(port.Name(), d, port)
		}
	}

	s.targets = make([]core.Target, len(groups))
	s.perVPU = make([][]*ncs.Device, len(groups))
	nextStick := 0
	kindCount := map[GroupKind]int{}
	batchName := func(k GroupKind) string {
		kindCount[k]++
		if kindCount[k] > 1 {
			return fmt.Sprintf("%s%d", k, kindCount[k])
		}
		return k.String()
	}
	for i, g := range groups {
		// Classic sessions run every group over the whole network and
		// the session blob; pipeline stages run their own segment.
		net, blob := s.net, s.blob
		if s.stageMode() {
			net, blob = s.stages[i].seg, s.stages[i].blob
		}
		if reps[i] == 1 {
			t, err := s.buildGroupTarget(i, g, net, blob, &nextStick, batchName)
			if err != nil {
				return err
			}
			s.targets[i] = t
			continue
		}
		// A replicated stage is a health-aware Pool of identical
		// copies of the group, each built exactly like a lone group
		// (same recovery wiring, same accounting index — every
		// replica's retries and drops land on the stage's collector).
		kids := make([]core.Target, reps[i])
		for r := range kids {
			t, err := s.buildGroupTarget(i, g, net, blob, &nextStick, batchName)
			if err != nil {
				return err
			}
			kids[r] = t
		}
		pool, err := core.NewPool(kids, core.PoolOptions{QueueDepth: s.cfg.QueueDepth})
		if err != nil {
			return fmt.Errorf("pipeline: stage %d replica pool: %w", i, err)
		}
		s.targets[i] = pool
	}
	return nil
}

// buildGroupTarget constructs and returns one target for group i over
// the given network (and, for VPU groups, compiled blob), preserving
// the exact construction and seeding order of the hand-wired
// constructors. A replicated stage calls it once per replica with the
// same group index, so all copies share the stage's collectors and
// recovery accounting.
func (s *Session) buildGroupTarget(i int, g Group, net *nn.Graph, blob []byte, nextStick *int, batchName func(GroupKind) string) (core.Target, error) {
	engineSeed := func() *rng.Source {
		if g.SeedLabel != "" {
			return rng.New(s.cfg.Seed).Derive(g.SeedLabel)
		}
		return rng.New(s.cfg.Seed)
	}
	switch g.Kind {
	case GroupCPU:
		eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), devsim.WorkloadOf(net), engineSeed())
		if err != nil {
			return nil, fmt.Errorf("pipeline: cpu engine: %w", err)
		}
		t, err := core.NewCPUTarget(eng, net, g.Batch, s.cfg.Functional)
		if err != nil {
			return nil, fmt.Errorf("pipeline: cpu target: %w", err)
		}
		if s.cfg.Timeline != nil {
			t.SetTimeline(s.cfg.Timeline)
		}
		s.applyAssembly(t)
		s.wireBatchRetry(t, i)
		s.registry.Add(batchName(GroupCPU), eng)
		return t, nil
	case GroupGPU:
		eng, err := devsim.NewGPU(devsim.DefaultGPUConfig(), devsim.WorkloadOf(net), engineSeed())
		if err != nil {
			return nil, fmt.Errorf("pipeline: gpu engine: %w", err)
		}
		t, err := core.NewGPUTarget(eng, net, g.Batch, s.cfg.Functional)
		if err != nil {
			return nil, fmt.Errorf("pipeline: gpu target: %w", err)
		}
		if s.cfg.Timeline != nil {
			t.SetTimeline(s.cfg.Timeline)
		}
		s.applyAssembly(t)
		s.wireBatchRetry(t, i)
		s.registry.Add(batchName(GroupGPU), eng)
		return t, nil
	case GroupVPU:
		sticks := s.devices[*nextStick : *nextStick+g.Devices]
		*nextStick += g.Devices
		opts := core.DefaultVPUOptions()
		if g.VPUOptions != nil {
			opts = *g.VPUOptions
		}
		opts.Functional = s.cfg.Functional
		if s.cfg.Timeline != nil {
			opts.Timeline = s.cfg.Timeline
		}
		opts.Recovery = s.groupRecovery(i)
		if len(s.cfg.Groups) == 1 && s.cfg.Hedge.Enabled() {
			// A lone multi-stick VPU group hedges across its own
			// sticks; hedge events all belong to group 0.
			opts.Hedge = s.sessionHedge(func(int) int { return 0 })
		}
		t, err := core.NewVPUTarget(sticks, blob, opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: vpu target: %w", err)
		}
		s.perVPU[i] = append(s.perVPU[i], sticks...)
		return t, nil
	case GroupCustom:
		return g.Target, nil
	}
	return nil, fmt.Errorf("pipeline: unknown group kind %v", g.Kind)
}

// groupRecovery wires the session's recovery policy for one VPU
// group: the user's hooks still fire, and the session's collectors
// account every retry, fault drop and outage so the report's
// availability metrics (and goodput) stay honest.
func (s *Session) groupRecovery(group int) core.RecoveryConfig {
	rc := s.cfg.Recovery
	if rc.Timeout <= 0 {
		return rc
	}
	userRetry, userDrop, userOutage := rc.OnRetry, rc.OnDrop, rc.OnOutage
	rc.OnRetry = func(item core.Item, at time.Duration) {
		if s.merged != nil {
			s.merged.NoteRetry()
			s.perGroup[group].NoteRetry()
		}
		if userRetry != nil {
			userRetry(item, at)
		}
	}
	rc.OnDrop = func(item core.Item, at time.Duration) {
		// A drop at an interior pipeline stage holds a boundary
		// in-flight credit; release it or the window stays narrowed by
		// every loss (core.Pipeline.StageDropped).
		if s.pipe != nil {
			s.pipe.StageDropped(group)
		}
		// Under pool-level hedging a lost copy is only a loss when no
		// other copy of the item is in flight or delivered.
		if s.pool != nil && !s.pool.HedgeItemLost(item.Index) {
			return
		}
		if s.merged != nil {
			s.merged.NoteDrop(core.DropFailed)
			s.perGroup[group].NoteDrop(core.DropFailed)
		}
		// A tenant's fault-dropped item never completes, so its
		// in-flight quota credit must be released here or the tenant's
		// MaxInFlight budget leaks away one failure at a time.
		if s.tenantMux != nil {
			if i, ok := s.tenantIdx[item.Tenant]; ok {
				s.perTenant[i].NoteDrop(core.DropFailed)
			}
			s.tenantMux.Done(item.Tenant)
		}
		if userDrop != nil {
			userDrop(item, at)
		}
	}
	rc.OnOutage = func(device string, from, to time.Duration, recovered bool) {
		if s.merged != nil {
			s.merged.NoteOutage(from, to, recovered)
			s.perGroup[group].NoteOutage(from, to, recovered)
		}
		if userOutage != nil {
			userOutage(device, from, to, recovered)
		}
	}
	return rc
}

// sessionHedge wires the session's hedge policy: the user's hooks
// still fire, and the session's collectors account every launched
// duplicate, hedge win and wasted completion. groupOf maps the
// hedger's child index (a pool group, or a VPU worker) to the device
// group charged with the event.
func (s *Session) sessionHedge(groupOf func(child int) int) core.HedgeConfig {
	hc := s.cfg.Hedge
	if !hc.Enabled() {
		return hc
	}
	userHedge, userWin, userWaste := hc.OnHedge, hc.OnWin, hc.OnWaste
	note := func(child int, merged func(), group func(c *core.Collector)) {
		if s.merged == nil {
			return
		}
		merged()
		if g := groupOf(child); g >= 0 && g < len(s.perGroup) {
			group(s.perGroup[g])
		}
	}
	hc.OnHedge = func(item core.Item, child int, at time.Duration) {
		note(child, func() { s.merged.NoteHedge() }, func(c *core.Collector) { c.NoteHedge() })
		if userHedge != nil {
			userHedge(item, child, at)
		}
	}
	hc.OnWin = func(item core.Item, child int, at time.Duration) {
		note(child, func() { s.merged.NoteHedgeWin() }, func(c *core.Collector) { c.NoteHedgeWin() })
		if userWin != nil {
			userWin(item, child, at)
		}
	}
	hc.OnWaste = func(item core.Item, child int, at time.Duration) {
		note(child, func() { s.merged.NoteHedgeWaste() }, func(c *core.Collector) { c.NoteHedgeWaste() })
		if userWaste != nil {
			userWaste(item, child, at)
		}
	}
	return hc
}

// wireBatchRetry routes a batch target's OOM re-enqueues
// (fault.BatchOOM split-and-retry) into the session collectors, so
// batch-engine faults show up in the report's retry accounting like
// VPU redeliveries do.
func (s *Session) wireBatchRetry(t *core.BatchTarget, group int) {
	t.SetRetryObserver(func(_ core.Item, _ time.Duration) {
		if s.merged != nil {
			s.merged.NoteRetry()
			s.perGroup[group].NoteRetry()
		}
	})
}

// applyAssembly configures a batch target's SLO-aware assembly from
// the session options.
func (s *Session) applyAssembly(t *core.BatchTarget) {
	if s.cfg.BatchMaxWait > 0 || s.cfg.AdaptiveBatch {
		t.SetAssembly(core.BatchAssembly{
			MaxWait:  s.cfg.BatchMaxWait,
			Adaptive: s.cfg.AdaptiveBatch,
		})
	}
}

// Env returns the simulation environment (for custom producer
// processes — the MPI-rank pattern).
func (s *Session) Env() *sim.Env { return s.env }

// Dataset returns the synthetic validation set.
func (s *Session) Dataset() *imagenet.Dataset { return s.ds }

// Network returns the workload graph.
func (s *Session) Network() *nn.Graph { return s.net }

// Blob returns the compiled NCS graph file (nil when no VPU group).
func (s *Session) Blob() []byte { return s.blob }

// Devices returns every Neural Compute Stick of the session, in
// testbed port order.
func (s *Session) Devices() []*ncs.Device { return s.devices }

// Targets returns the constructed group targets, in group order.
func (s *Session) Targets() []core.Target { return s.targets }

// Stream returns the push source when the session was configured with
// WithStream, nil otherwise.
func (s *Session) Stream() *core.StreamSource { return s.stream }

// FaultRegistry returns the session's injectable-device registry
// (stick and port hooks under "ncs0".., batch engines under
// "cpu"/"gpu"), for hand-wired fault.Apply experiments.
func (s *Session) FaultRegistry() fault.Registry { return s.registry }

// FaultLog returns the injected-fault log (nil until Run, empty when
// no plan was configured). It fills in as the simulation runs.
func (s *Session) FaultLog() *fault.Log { return s.faultLog }

// SetSource overrides the input source (folder sources, custom
// generators). Call before Run.
func (s *Session) SetSource(src core.Source) { s.source = src }

// Run wires the source to the device groups, drives the simulation to
// completion and returns the unified report. A session runs once.
func (s *Session) Run() (*Report, error) {
	if s.ran {
		return nil, fmt.Errorf("pipeline: session already ran")
	}
	s.ran = true

	src := s.source
	if src == nil {
		dsrc, err := core.NewDatasetSource(s.ds, 0, s.cfg.Images, s.cfg.Functional)
		if err != nil {
			return nil, fmt.Errorf("pipeline: source: %w", err)
		}
		src = dsrc
	}
	if s.cfg.Arrivals != nil {
		label := s.cfg.ArrivalLabel
		if label == "" {
			label = "arrivals"
		}
		asrc, err := core.NewArrivalSource(s.env, src, s.cfg.Arrivals,
			rng.New(s.cfg.Seed).Derive(label))
		if err != nil {
			return nil, fmt.Errorf("pipeline: arrivals: %w", err)
		}
		src = asrc
	}

	merged := core.NewCollector(s.cfg.Retain)
	merged.SetSLO(s.cfg.SLO)
	perGroup := make([]*core.Collector, len(s.targets))
	for i := range perGroup {
		perGroup[i] = core.NewCollector(false)
		perGroup[i].SetSLO(s.cfg.SLO)
	}
	// Publish the collectors before the simulation starts: the recovery
	// hooks installed at build time reach them through the session.
	s.merged, s.perGroup = merged, perGroup

	if s.cfg.Tenants.Enabled() {
		// One collector per tenant, measured against the tenant's own
		// SLO (falling back to the session target), so per-tenant
		// goodput reflects each tenant's own contract.
		ids := s.cfg.Tenants.IDs()
		s.perTenant = make([]*core.Collector, len(ids))
		s.perTenantSinks = make([]func(core.Result), len(ids))
		s.tenantIdx = make(map[string]int, len(ids))
		for i, id := range ids {
			c := core.NewCollector(false)
			c.SetSLO(s.cfg.Tenants.SLOFor(id, s.cfg.SLO))
			s.perTenant[i] = c
			s.perTenantSinks[i] = c.Sink()
			s.tenantIdx[id] = i
		}
	}

	if !s.cfg.Faults.Empty() {
		var observe func(fault.Injection)
		if s.cfg.Timeline != nil {
			tl := s.cfg.Timeline
			observe = func(inj fault.Injection) {
				tl.Add(inj.Device, trace.Fault, inj.At, inj.Until, inj.Kind.String())
			}
		}
		lg, err := fault.Apply(s.env, s.cfg.Faults, rng.New(s.cfg.Seed).Derive("faults"), s.registry, observe)
		if err != nil {
			return nil, fmt.Errorf("pipeline: faults: %w", err)
		}
		s.faultLog = lg
	}

	if s.cfg.AdmissionDepth > 0 {
		aq, err := core.NewAdmissionQueue(s.env, src, core.AdmissionOptions{
			Depth:    s.cfg.AdmissionDepth,
			Policy:   s.cfg.AdmissionPolicy,
			Deadline: s.cfg.SLO, // work past the SLO is not worth a device's time
			MinDepth: s.cfg.AdmissionMinDepth,
			OnDrop: func(_ core.Item, reason core.DropReason, _ time.Duration) {
				merged.NoteDrop(reason)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: admission: %w", err)
		}
		s.admission = aq
		src = aq
	}

	if s.cfg.Tenants.Enabled() {
		topts := s.cfg.Tenants.MuxOptions(s.cfg.SLO)
		topts.Seed = rng.New(s.cfg.Seed).Derive("tenants")
		topts.OnDrop = func(item core.Item, reason core.DropReason, _ time.Duration) {
			merged.NoteDrop(reason)
			if i, ok := s.tenantIdx[item.Tenant]; ok {
				s.perTenant[i].NoteDrop(reason)
			}
		}
		mux, err := core.NewTenantMux(s.env, src, topts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: tenants: %w", err)
		}
		s.tenantMux = mux
		src = mux
	}

	// Health-aware admission: the ingress bound tracks healthy device
	// capacity — through the pool's aggregate observer for device
	// groups, or straight off a lone health-aware target.
	subscribeAdmission := func(t core.Target) {
		if !s.cfg.AdmissionShrink || s.admission == nil {
			return
		}
		if ha, ok := t.(core.HealthAware); ok {
			ha.SetHealthObserver(s.admission.ObserveHealth)
		}
	}

	// finalSink receives every deduplicated final result; under
	// tenancy it additionally routes the result into the owning
	// tenant's collector and releases the tenant's in-flight quota
	// credit (core.TenantMux.Done).
	finalSink := merged.Sink()
	if s.tenantMux != nil {
		base := finalSink
		finalSink = func(r core.Result) {
			base(r)
			if i, ok := s.tenantIdx[r.Tenant]; ok {
				s.perTenantSinks[i](r)
			}
			s.tenantMux.Done(r.Tenant)
		}
	}

	var job *core.Job
	var pool *core.Pool
	if s.stageMode() {
		// Model-parallel pipeline: serial stages, final-stage results
		// to the merged collector, per-stage emissions to the group
		// collectors through the hop observer.
		sinks := make([]func(core.Result), len(s.targets))
		for i := range sinks {
			sinks[i] = perGroup[i].Sink()
		}
		depths := make([]int, len(s.targets)-1)
		for b := range depths {
			d := s.stages[b].spec.Queue
			if d == 0 {
				d = s.cfg.QueueDepth
			}
			if d == 0 {
				d = 2
			}
			// An interior batch stage holds a full batch in flight while
			// it assembles; its downstream window must cover it or the
			// batch can never fill (classic gather would deadlock).
			if g := s.stages[b].spec.Group; (g.Kind == GroupCPU || g.Kind == GroupGPU) && d < g.Batch {
				d = g.Batch
			}
			depths[b] = d
		}
		pipe, err := core.NewPipeline(s.targets, core.PipelineOptions{
			QueueDepths:   depths,
			OnStageResult: func(stage int, r core.Result) { sinks[stage](r) },
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: stages: %w", err)
		}
		s.pipe = pipe
		subscribeAdmission(pipe)
		job = pipe.Start(s.env, src, finalSink)
	} else if len(s.targets) == 1 {
		// Single group: start directly, bit-identical to hand-wiring.
		subscribeAdmission(s.targets[0])
		sink := finalSink
		groupSink := perGroup[0].Sink()
		job = s.targets[0].Start(s.env, src, func(r core.Result) {
			groupSink(r)
			sink(r)
		})
	} else {
		var weights []float64
		for _, g := range s.cfg.Groups {
			if g.Weight > 0 {
				weights = make([]float64, len(s.cfg.Groups))
				for i, gg := range s.cfg.Groups {
					weights[i] = gg.Weight
					if weights[i] == 0 {
						weights[i] = 1
					}
				}
				break
			}
		}
		sinks := make([]func(core.Result), len(s.targets))
		for i := range sinks {
			sinks[i] = perGroup[i].Sink()
		}
		var err error
		pool, err = core.NewPool(s.targets, core.PoolOptions{
			Routing:    s.cfg.Routing,
			Weights:    weights,
			QueueDepth: s.cfg.QueueDepth,
			OnResult:   func(child int, r core.Result) { sinks[child](r) },
			Hedge:      s.sessionHedge(func(child int) int { return child }),
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: pool: %w", err)
		}
		s.pool = pool
		subscribeAdmission(pool)
		job = pool.Start(s.env, src, finalSink)
	}

	s.env.Run()

	report := s.buildReport(job, pool, merged, perGroup)
	return report, job.Err
}
