package pipeline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// hedgedSession builds the standard hedging scenario: four sticks
// under Poisson load with a mid-run slowdown straggler, hedging per
// hc.
func hedgedSession(t *testing.T, hc core.HedgeConfig, extra ...Option) *Report {
	t.Helper()
	const n = 120
	plan := fault.Plan{Events: []fault.Event{
		{Device: "ncs1", Kind: fault.Slowdown, At: 5 * time.Second, Factor: 8, Duration: 4 * time.Second},
	}}
	opts := []Option{
		WithImages(n),
		WithVPUs(4),
		WithArrivals(core.DelayedArrivals(core.PoissonArrivals(30), 4500*time.Millisecond)),
		WithSLO(500 * time.Millisecond),
		WithFaults(plan),
		WithRecovery(core.DefaultRecoveryConfig()),
		WithHedging(hc),
	}
	sess, err := New(append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSessionHedgingSingleVPUGroup: a lone 4-stick group hedges
// across its own sticks — duplicates launch against the straggler,
// dedup keeps the completion count exact, and the report carries the
// accounting.
func TestSessionHedgingSingleVPUGroup(t *testing.T) {
	rep := hedgedSession(t, core.HedgeConfig{Trigger: 300 * time.Millisecond})
	if rep.Images != 120 {
		t.Errorf("Images = %d, want 120 (dedup must keep the count exact)", rep.Images)
	}
	if rep.Collector.N != 120 {
		t.Errorf("collector N = %d, want 120", rep.Collector.N)
	}
	if rep.Hedged == 0 {
		t.Fatal("no hedges launched against an 8x straggler stick")
	}
	if rep.HedgeWins == 0 {
		t.Error("no hedge wins recorded")
	}
	if rep.HedgeWins+rep.HedgeWaste > 2*rep.Hedged {
		t.Errorf("accounting out of balance: %d launched, %d wins, %d waste",
			rep.Hedged, rep.HedgeWins, rep.HedgeWaste)
	}
	if got := rep.Targets[0].Hedged; got != rep.Hedged {
		t.Errorf("per-group Hedged = %d, want %d (single group carries all)", got, rep.Hedged)
	}
}

// TestSessionHedgingPoolGroups: hedging across device groups (a pool
// of two 2-stick groups) launches duplicates and keeps per-group
// attribution consistent with the aggregate.
func TestSessionHedgingPoolGroups(t *testing.T) {
	const n = 120
	plan := fault.Plan{Events: []fault.Event{
		{Device: "ncs1", Kind: fault.Slowdown, At: 5 * time.Second, Factor: 8, Duration: 4 * time.Second},
	}}
	sess, err := New(
		WithImages(n),
		WithVPUs(2),
		WithVPUs(2),
		WithRouting(core.RouteLatency),
		WithArrivals(core.DelayedArrivals(core.PoissonArrivals(30), 9*time.Second)),
		WithSLO(500*time.Millisecond),
		WithFaults(plan),
		WithRecovery(core.DefaultRecoveryConfig()),
		WithHedging(core.HedgeConfig{Trigger: 300 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collector.N != n {
		t.Errorf("collector N = %d, want %d", rep.Collector.N, n)
	}
	var perGroup int
	for _, tr := range rep.Targets {
		perGroup += tr.Hedged
	}
	if perGroup != rep.Hedged {
		t.Errorf("per-group hedges sum to %d, aggregate says %d", perGroup, rep.Hedged)
	}
}

// TestSessionHedgeNeverBitIdentical: trigger=∞ must reproduce the
// unhedged session bit for bit — the acceptance bar for the hedging
// machinery staying out of the event stream.
func TestSessionHedgeNeverBitIdentical(t *testing.T) {
	off := hedgedSession(t, core.HedgeConfig{}, WithRetain(true))
	inf := hedgedSession(t, core.HedgeConfig{Trigger: core.HedgeNever}, WithRetain(true))
	if off.String() != inf.String() {
		t.Errorf("reports differ between unhedged and trigger=∞:\n--- off ---\n%s\n--- inf ---\n%s", off, inf)
	}
	if len(off.Results) != len(inf.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(off.Results), len(inf.Results))
	}
	for i := range off.Results {
		a, b := off.Results[i], inf.Results[i]
		a.Output, b.Output = nil, nil
		if a != b {
			t.Fatalf("result %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestSessionHedgingDeterministic: the same hedged, faulted, seeded
// session twice — byte-identical reports.
func TestSessionHedgingDeterministic(t *testing.T) {
	a := hedgedSession(t, core.HedgeConfig{Trigger: 300 * time.Millisecond})
	b := hedgedSession(t, core.HedgeConfig{Trigger: 300 * time.Millisecond})
	if a.String() != b.String() {
		t.Errorf("hedged faulted session not reproducible:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if a.Hedged != b.Hedged || a.HedgeWins != b.HedgeWins || a.HedgeWaste != b.HedgeWaste {
		t.Errorf("hedge counters differ: %d/%d/%d vs %d/%d/%d",
			a.Hedged, a.HedgeWins, a.HedgeWaste, b.Hedged, b.HedgeWins, b.HedgeWaste)
	}
}

// TestSessionHedgingValidation: misconfigured hedging fails session
// construction with a descriptive error.
func TestSessionHedgingValidation(t *testing.T) {
	if _, err := New(WithImages(4), WithVPUs(1),
		WithHedging(core.HedgeConfig{Trigger: time.Second})); err == nil {
		t.Error("hedging a single-stick group must be rejected")
	}
	if _, err := New(WithImages(4), WithCPU(8),
		WithHedging(core.HedgeConfig{Trigger: time.Second})); err == nil {
		t.Error("hedging a lone CPU group must be rejected")
	}
	if _, err := New(WithImages(4), WithCPU(8), WithVPUs(2),
		WithRouting(core.RouteWorkStealing),
		WithHedging(core.HedgeConfig{Trigger: time.Second})); err == nil {
		t.Error("hedging under work-stealing must be rejected")
	}
}

// TestSessionAdmissionShrink: a bounded ingress wired to pool health
// shrinks during the outage (sheds more than the full-depth baseline)
// and the report records the shrink.
func TestSessionAdmissionShrink(t *testing.T) {
	run := func(shrink bool) *Report {
		const n = 150
		plan := fault.Plan{Events: []fault.Event{
			{Device: "ncs0", Kind: fault.StickHang, At: 5 * time.Second},
		}}
		opts := []Option{
			WithImages(n),
			WithVPUs(2),
			WithArrivals(core.DelayedArrivals(core.PoissonArrivals(14), 2500*time.Millisecond)),
			WithSLO(400 * time.Millisecond),
			WithAdmission(16, core.ShedNewest),
			WithFaults(plan),
			// Detect fast, so the shrink binds while the baseline queue
			// still has room — the scenario the feature exists for.
			WithRecovery(core.RecoveryConfig{Timeout: 500 * time.Millisecond, Recover: true, MaxAttempts: 3}),
		}
		if shrink {
			opts = append(opts, WithAdmissionShrink(0))
		}
		sess, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(false)
	shrunk := run(true)
	if base.Admission.Shrinks != 0 {
		t.Errorf("baseline recorded %d shrinks without the option", base.Admission.Shrinks)
	}
	if shrunk.Admission.Shrinks == 0 {
		t.Error("no admission shrink recorded across a stick outage")
	}
	// The shrunk ingress turns work away at the edge instead of
	// letting it expire in the queue.
	if shrunk.Admission.Shed <= base.Admission.Shed {
		t.Errorf("shed %d with shrink vs %d without — the smaller bound must shed more",
			shrunk.Admission.Shed, base.Admission.Shed)
	}
	if shrunk.Admission.Expired > base.Admission.Expired {
		t.Errorf("expired %d with shrink vs %d without — a smaller bound must never increase in-queue expiry",
			shrunk.Admission.Expired, base.Admission.Expired)
	}
}

// TestSessionBatchOOMFault: a BatchOOM plan against the CPU group
// splits batches instead of losing items; the report counts the
// re-enqueues as retries.
func TestSessionBatchOOMFault(t *testing.T) {
	const n = 48
	plan := fault.Plan{Events: []fault.Event{
		{Device: "cpu", Kind: fault.BatchOOM, At: 0, Count: 2},
	}}
	sess, err := New(
		WithImages(n),
		WithCPU(8),
		WithFaults(plan),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != n {
		t.Errorf("Images = %d, want %d (OOM must delay, never lose)", rep.Images, n)
	}
	if rep.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", rep.FaultsInjected)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded for the re-enqueued half-batches")
	}
	if rep.FaultDrops != 0 {
		t.Errorf("FaultDrops = %d, want 0", rep.FaultDrops)
	}
}
