package pipeline

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Hot-reload: the session's operator-intervention surface. A running
// session exposes three knobs whose runtime state is consulted lazily
// — the SLO at result-sink and dispatch time, the hedge budget at
// trigger-fire time, the admission depth at admit time — so each can
// be swapped mid-run and takes effect strictly after the swap instant,
// with everything before it untouched. The scenario engine schedules
// these through ScheduleReload at declared sim-times to model an
// operator retuning a live fleet; tests and custom drivers may call
// the Reload* methods directly from simulation callbacks.
//
// Determinism: a reload mutates plain session state inside the
// single-threaded kernel — no RNG is consumed and no process is
// spawned — so a reload that sets a knob to its current value is
// bit-identical to never reloading.

// ReloadSLO replaces the session's serving deadline from now on:
// completions after the call are judged against the new target (the
// collectors classify at sink time), and with bounded admission the
// ingress deadline follows it — work that can no longer meet the new
// SLO is not worth a device's time, exactly as at construction.
// Per-tenant SLOs are contracts, not operator knobs, and are
// untouched; so is goodput already accounted. A negative target is an
// error; 0 disables SLO accounting for the rest of the run.
func (s *Session) ReloadSLO(target time.Duration) error {
	if target < 0 {
		return fmt.Errorf("pipeline: negative SLO %v", target)
	}
	s.cfg.SLO = target
	if s.merged != nil {
		s.merged.SetSLO(target)
	}
	for _, c := range s.perGroup {
		c.SetSLO(target)
	}
	if s.admission != nil {
		if err := s.admission.SetDeadline(target); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	return nil
}

// ReloadHedgeBudget replaces the hedge-volume budget from now on (0 =
// unlimited): triggers firing after the call are capped by the new
// budget, duplicates already launched stay counted against the old
// one. It reaches whichever engine carries the session's hedger — the
// device-group pool, or the lone multi-stick VPU target. A negative
// budget is an error.
func (s *Session) ReloadHedgeBudget(budget float64) error {
	if budget < 0 {
		return fmt.Errorf("pipeline: negative hedge budget %g", budget)
	}
	s.cfg.Hedge.Budget = budget
	if s.pool != nil {
		s.pool.SetHedgeBudget(budget)
	}
	for _, t := range s.targets {
		if vt, ok := t.(*core.VPUTarget); ok {
			vt.SetHedgeBudget(budget)
		}
	}
	return nil
}

// ReloadAdmissionDepth re-bounds the session ingress from now on:
// queued items keep their place and drain normally, new arrivals meet
// the new bound. It is an error on a session without bounded
// admission (WithAdmission), or for a depth < 1 — admission cannot be
// turned on or off mid-run, only resized.
func (s *Session) ReloadAdmissionDepth(depth int) error {
	if s.cfg.AdmissionDepth == 0 {
		return fmt.Errorf("pipeline: admission depth reload needs a bounded ingress (WithAdmission)")
	}
	if s.admission == nil {
		// Run not reached yet: record the new depth for construction.
		if depth < 1 {
			return fmt.Errorf("pipeline: admission queue depth %d (need >= 1)", depth)
		}
		s.cfg.AdmissionDepth = depth
		return nil
	}
	if err := s.admission.SetDepth(depth); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	s.cfg.AdmissionDepth = depth
	return nil
}

// ScheduleReload schedules fn at the virtual instant `at`, before or
// during the run — the hook the scenario engine hangs declared
// operator interventions on. fn runs inside the simulation kernel;
// errors it returns are collected and surfaced by Run's caller via
// ReloadErrs. Call before Run (scheduling after the simulation
// finished would never fire).
func (s *Session) ScheduleReload(at time.Duration, fn func(s *Session) error) {
	s.env.At(at, func() {
		if err := fn(s); err != nil {
			s.reloadErrs = append(s.reloadErrs, fmt.Errorf("reload at %v: %w", at, err))
		}
	})
}

// ReloadErrs returns the errors of scheduled reloads that failed
// during the run (nil when every reload applied cleanly).
func (s *Session) ReloadErrs() []error { return s.reloadErrs }
