package pipeline

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/imagenet"
	"repro/internal/sim"
)

func smallDataset(images int) imagenet.Config {
	cfg := imagenet.DefaultConfig()
	cfg.Images = images
	return cfg
}

// TestSessionHeterogeneous: CPU + GPU + 2 VPUs over one dataset
// source classify every item exactly once and the report aggregates
// match the per-group jobs.
func TestSessionHeterogeneous(t *testing.T) {
	const images = 60
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithCPU(4),
		WithGPU(4),
		WithVPUs(2),
		WithRouting(core.RouteWeighted),
		WithRetain(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != images {
		t.Errorf("report images = %d, want %d", rep.Images, images)
	}
	if len(rep.Targets) != 3 {
		t.Fatalf("report has %d groups, want 3", len(rep.Targets))
	}
	sum := 0
	for _, tr := range rep.Targets {
		sum += tr.Images
		if tr.Images > 0 && tr.Throughput <= 0 {
			t.Errorf("group %s: %d images but throughput %g", tr.Name, tr.Images, tr.Throughput)
		}
	}
	if sum != images {
		t.Errorf("groups total %d images, want %d", sum, images)
	}
	// Every retained result appears exactly once.
	seen := map[int]int{}
	for _, r := range rep.Results {
		seen[r.Index]++
	}
	if len(seen) != images {
		t.Errorf("%d distinct retained results, want %d", len(seen), images)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("item %d classified %d times", idx, n)
		}
	}
	// VPU group metered energy must be visible on the report.
	var vpu *TargetReport
	for i := range rep.Targets {
		if rep.Targets[i].Kind == GroupVPU {
			vpu = &rep.Targets[i]
		}
	}
	if vpu == nil || vpu.EnergyJoules <= 0 {
		t.Errorf("VPU group has no metered energy: %+v", vpu)
	}
	if rep.TDPWatts <= 160 { // CPU 80 + GPU 80 + sticks
		t.Errorf("aggregate TDP = %g, want > 160", rep.TDPWatts)
	}
	if !strings.Contains(rep.String(), "total") {
		t.Error("report table missing totals row")
	}
}

// TestSessionSingleGroupMatchesHandWired: a 2-stick session must be
// bit-identical to the manual env/testbed/compile/target wiring.
func TestSessionSingleGroupMatchesHandWired(t *testing.T) {
	const images = 40
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithVPUs(2),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Hand-wired equivalent (the pre-session API dance).
	hand := handWiredVPU(t, images, 7)
	if rep.Throughput != hand {
		t.Errorf("session throughput %.6f != hand-wired %.6f", rep.Throughput, hand)
	}
}

func handWiredVPU(t *testing.T, images int, seed uint64) float64 {
	t.Helper()
	sess, err := NewFromConfig(Config{
		Dataset: smallDataset(images),
		Groups:  []Group{{Kind: GroupVPU, Devices: 2}},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the session's own pieces manually: same env, same blob,
	// same devices — but started through the raw core API.
	env := sess.Env()
	target, err := core.NewVPUTarget(sess.Devices(), sess.Blob(), core.DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := core.NewDatasetSource(sess.Dataset(), 0, images, false)
	if err != nil {
		t.Fatal(err)
	}
	col := core.NewCollector(false)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	return job.Throughput()
}

// TestSessionFunctionalAccuracy: a functional CPU session classifies
// with the calibrated micro network and reports plausible accuracy.
func TestSessionFunctionalAccuracy(t *testing.T) {
	const images = 32
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithCPU(8),
		WithFunctional(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != images {
		t.Fatalf("images = %d", rep.Images)
	}
	col := rep.Collector
	if col.Correct+col.Mispred != images {
		t.Errorf("classified %d of %d", col.Correct+col.Mispred, images)
	}
	if rep.TopOneError >= 0.9 {
		t.Errorf("top-1 error %.2f — classifier not calibrated?", rep.TopOneError)
	}
	if rep.MeanConfidence <= 0 {
		t.Errorf("mean confidence %g", rep.MeanConfidence)
	}
}

// TestSessionStream: an MPI-style producer feeds a stream consumed by
// two groups; every frame lands exactly once.
func TestSessionStream(t *testing.T) {
	const frames = 30
	sess, err := New(
		WithDataset(smallDataset(frames)),
		WithCPU(2),
		WithVPUs(1),
		WithFunctional(true),
		WithStream(8),
		WithRouting(core.RouteWorkStealing),
	)
	if err != nil {
		t.Fatal(err)
	}
	ds := sess.Dataset()
	stream := sess.Stream()
	if stream == nil {
		t.Fatal("no stream")
	}
	sess.Env().Process("producer", func(p *sim.Proc) {
		for i := 0; i < frames; i++ {
			stream.Push(p, core.Item{Index: i, Image: ds.Preprocessed(i), Label: ds.Label(i)})
		}
		stream.Close(p)
	})
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != frames {
		t.Errorf("images = %d, want %d", rep.Images, frames)
	}
}

// TestSessionStaticWeights: explicit group weights split a sized
// source proportionally under static routing.
func TestSessionStaticWeights(t *testing.T) {
	const images = 40
	sess, err := New(
		WithDataset(smallDataset(images)),
		WithGroup(Group{Kind: GroupCPU, Batch: 4, Weight: 3}),
		WithGroup(Group{Kind: GroupGPU, Batch: 4, Weight: 1}),
		WithRouting(core.RouteStatic),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets[0].Images != 30 || rep.Targets[1].Images != 10 {
		t.Errorf("static 3:1 split = %d/%d, want 30/10",
			rep.Targets[0].Images, rep.Targets[1].Images)
	}
}

// TestSessionSharedNetworkAndBlob: supplying a prebuilt network and
// compiled blob must reproduce the self-built session exactly.
func TestSessionSharedNetworkAndBlob(t *testing.T) {
	const images = 30
	self, err := New(WithDataset(smallDataset(images)), WithVPUs(1), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	net, blob := self.Network(), self.Blob()
	selfRep, err := self.Run()
	if err != nil {
		t.Fatal(err)
	}

	shared, err := New(
		WithDataset(smallDataset(images)),
		WithVPUs(1),
		WithSeed(5),
		WithNetwork(net),
		WithBlob(blob),
	)
	if err != nil {
		t.Fatal(err)
	}
	sharedRep, err := shared.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sharedRep.Throughput != selfRep.Throughput {
		t.Errorf("shared-workload session throughput %.4f != self-built %.4f",
			sharedRep.Throughput, selfRep.Throughput)
	}
}

// TestSessionStaticOverStream: static routing cannot partition an
// unbounded stream — Run must return the routing error with a
// well-formed report, not panic.
func TestSessionStaticOverStream(t *testing.T) {
	sess, err := New(
		WithDataset(smallDataset(8)),
		WithCPU(2),
		WithVPUs(1),
		WithStream(4),
		WithRouting(core.RouteStatic),
	)
	if err != nil {
		t.Fatal(err)
	}
	stream := sess.Stream()
	sess.Env().Process("producer", func(p *sim.Proc) { stream.Close(p) })
	rep, err := sess.Run()
	if err == nil {
		t.Fatal("static routing over a stream succeeded; want Sized error")
	}
	if rep == nil || len(rep.Targets) != 2 {
		t.Fatalf("report malformed after routing error: %+v", rep)
	}
	if rep.Images != 0 {
		t.Errorf("images = %d after routing error", rep.Images)
	}
}

// TestSessionValidation: configuration errors surface at New, and a
// session refuses to run twice.
func TestSessionValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("session with no groups accepted")
	}
	if _, err := New(WithCPU(-1)); err == nil {
		t.Error("negative batch accepted")
	}
	if _, err := New(WithVPUs(0), WithImages(10_000_000)); err == nil {
		t.Error("oversized image count accepted")
	}
	if _, err := New(WithTarget(nil)); err == nil {
		t.Error("nil custom target accepted")
	}

	sess, err := New(WithDataset(smallDataset(8)), WithCPU(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err == nil {
		t.Error("second Run accepted")
	}
}
