package pipeline

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/power"
)

// TargetReport is the per-device-group slice of a session report.
type TargetReport struct {
	// Name is the target's name ("cpu", "vpu-multi(4)", ...).
	Name string
	// Kind is the group's device family.
	Kind GroupKind
	// Images is the number of completed inferences.
	Images int
	// Throughput is steady-state images per second.
	Throughput float64
	// TDPWatts is the group's thermal design power.
	TDPWatts float64
	// ImagesPerWatt is Eq. (1): Throughput / TDPWatts.
	ImagesPerWatt float64
	// TopOneError and MeanConfidence are accuracy aggregates
	// (meaningful for functional runs with labelled items).
	TopOneError    float64
	MeanConfidence float64
	// EnergyJoules and AvgPowerWatts come from the simulated power
	// meters (VPU groups only; 0 elsewhere) — the measurement the
	// paper leaves to future work.
	EnergyJoules  float64
	AvgPowerWatts float64
	// Latency is the group's per-item serving-latency distribution
	// (total with exact tail quantiles, split into queue wait and
	// service time). Under closed-loop runs the queue wait reflects
	// only internal buffering; under WithArrivals it is real queueing
	// against offered load.
	Latency core.LatencySummary
	// Job exposes the raw timing (StartedAt/ReadyAt/DoneAt, Err).
	Job *core.Job
	// Collector exposes the raw per-group aggregates.
	Collector *core.Collector
}

// Report is the unified outcome of a session run.
type Report struct {
	// Targets holds one entry per device group, in group order.
	Targets []TargetReport
	// Images is the total number of completed inferences.
	Images int
	// Throughput is the aggregate steady-state rate of the whole
	// group (images over the pool's steady-state window).
	Throughput float64
	// TDPWatts and ImagesPerWatt aggregate Eq. (1) over all groups.
	TDPWatts      float64
	ImagesPerWatt float64
	// TopOneError and MeanConfidence are merged accuracy aggregates.
	TopOneError    float64
	MeanConfidence float64
	// EnergyJoules totals the metered energy of all VPU groups.
	EnergyJoules float64
	// Latency is the merged per-item serving-latency distribution
	// across all groups.
	Latency core.LatencySummary
	// Arrivals names the open-loop arrival process driving the run
	// (nil for closed-loop runs).
	Arrivals core.Arrivals
	// SimTime is the total virtual time of the run (including setup).
	SimTime time.Duration
	// Routing names the scheduling policy that distributed the work
	// (meaningful when more than one group ran).
	Routing core.Routing
	// Job is the aggregate job (the pool's, or the single target's).
	Job *core.Job
	// Collector is the merged collector; Results holds every result
	// when the session retained them.
	Collector *core.Collector
	// Results are the retained per-inference results (nil unless the
	// session was configured with retention).
	Results []core.Result
}

func (s *Session) buildReport(job *core.Job, pool *core.Pool, merged *core.Collector, perGroup []*core.Collector) *Report {
	rep := &Report{
		Images:         job.Images,
		Throughput:     job.Throughput(),
		TopOneError:    merged.TopOneError(),
		MeanConfidence: merged.MeanConfidence(),
		Latency:        merged.Latency(),
		Arrivals:       s.cfg.Arrivals,
		SimTime:        s.env.Now(),
		Routing:        s.cfg.Routing,
		Job:            job,
		Collector:      merged,
		Results:        merged.Results,
	}
	jobs := []*core.Job{job}
	if pool != nil {
		jobs = pool.ChildJobs()
	}
	for i, t := range s.targets {
		tj := jobs[i]
		tr := TargetReport{
			Name:           t.Name(),
			Kind:           s.cfg.Groups[i].Kind,
			Images:         tj.Images,
			Throughput:     tj.Throughput(),
			TDPWatts:       t.TDPWatts(),
			TopOneError:    perGroup[i].TopOneError(),
			MeanConfidence: perGroup[i].MeanConfidence(),
			Latency:        perGroup[i].Latency(),
			Job:            tj,
			Collector:      perGroup[i],
		}
		if tr.TDPWatts > 0 {
			tr.ImagesPerWatt = power.ImagesPerWatt(tr.Throughput, tr.TDPWatts)
		}
		for _, d := range s.perVPU[i] {
			tr.EnergyJoules += d.Meter().EnergyJoules(s.env.Now())
			tr.AvgPowerWatts += d.Meter().AveragePowerWatts(s.env.Now())
		}
		rep.TDPWatts += tr.TDPWatts
		rep.EnergyJoules += tr.EnergyJoules
		rep.Targets = append(rep.Targets, tr)
	}
	if rep.TDPWatts > 0 {
		rep.ImagesPerWatt = power.ImagesPerWatt(rep.Throughput, rep.TDPWatts)
	}
	return rep
}

// String renders the report as an aligned table, one row per group
// plus a totals row.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %10s %9s %8s %10s %10s\n",
		"group", "images", "img/s", "TDP(W)", "img/W", "top1-err", "energy(J)")
	row := func(name string, images int, ips, tdp, ipw, top1, joules float64) {
		fmt.Fprintf(&b, "%-18s %8d %10.1f %9.1f %8.2f %9.2f%% %10.1f\n",
			name, images, ips, tdp, ipw, top1*100, joules)
	}
	for _, t := range r.Targets {
		row(t.Name, t.Images, t.Throughput, t.TDPWatts, t.ImagesPerWatt, t.TopOneError, t.EnergyJoules)
	}
	if len(r.Targets) > 1 {
		row("total", r.Images, r.Throughput, r.TDPWatts, r.ImagesPerWatt, r.TopOneError, r.EnergyJoules)
	}
	if r.Latency.N > 0 {
		ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
		fmt.Fprintf(&b, "\n%-18s %10s %10s %10s %10s %11s %11s\n",
			"latency", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "queue(ms)", "service(ms)")
		lrow := func(name string, l core.LatencySummary) {
			fmt.Fprintf(&b, "%-18s %10.1f %10.1f %10.1f %10.1f %11.1f %11.1f\n",
				name, ms(l.P50), ms(l.P95), ms(l.P99), ms(l.Max), ms(l.QueueMean), ms(l.ServiceMean))
		}
		for _, t := range r.Targets {
			lrow(t.Name, t.Latency)
		}
		if len(r.Targets) > 1 {
			lrow("total", r.Latency)
		}
	}
	fmt.Fprintf(&b, "simulated time %v", r.SimTime)
	if len(r.Targets) > 1 {
		fmt.Fprintf(&b, ", routing %v", r.Routing)
	}
	if r.Arrivals != nil {
		fmt.Fprintf(&b, ", arrivals %v", r.Arrivals)
	}
	b.WriteString("\n")
	return b.String()
}
