package pipeline

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/power"
)

// TargetReport is the per-device-group slice of a session report.
type TargetReport struct {
	// Name is the target's name ("cpu", "vpu-multi(4)", ...).
	Name string
	// Kind is the group's device family.
	Kind GroupKind
	// Images is the number of completed inferences.
	Images int
	// Throughput is steady-state images per second.
	Throughput float64
	// TDPWatts is the group's thermal design power.
	TDPWatts float64
	// ImagesPerWatt is Eq. (1): Throughput / TDPWatts.
	ImagesPerWatt float64
	// TopOneError and MeanConfidence are accuracy aggregates
	// (meaningful for functional runs with labelled items).
	TopOneError    float64
	MeanConfidence float64
	// EnergyJoules and AvgPowerWatts come from the simulated power
	// meters (VPU groups only; 0 elsewhere) — the measurement the
	// paper leaves to future work.
	EnergyJoules  float64
	AvgPowerWatts float64
	// Latency is the group's per-item serving-latency distribution
	// (total with exact tail quantiles, split into queue wait and
	// service time). Under closed-loop runs the queue wait reflects
	// only internal buffering; under WithArrivals it is real queueing
	// against offered load.
	Latency core.LatencySummary
	// Goodput is the fraction of the group's completions that met the
	// session SLO (admission drops happen at ingress, before routing,
	// so they cannot be attributed to a group; the arrival-based
	// goodput lives on the aggregate Report). 0 when no SLO is set.
	Goodput float64
	// Availability metrics (meaningful for VPU groups under a fault
	// plan; zero otherwise). Outages counts detected device outages,
	// Recovered those healed by re-opening the device; Retries counts
	// fault-triggered redeliveries and FaultDrops items lost after the
	// redelivery budget. Downtime is total device-down time (abandoned
	// devices charged to the end of the run), MTTR the mean
	// detection-to-rejoin time of recovered outages, and Uptime the
	// device-time fraction the group's sticks were serviceable.
	Outages, Recovered  int
	Retries, FaultDrops int
	Downtime, MTTR      time.Duration
	Uptime              float64
	// Hedge accounting (meaningful under WithHedging; zero otherwise):
	// Hedged counts duplicates this group received, HedgeWins its
	// completions that beat the other copy, HedgeWaste its discarded
	// losing completions — device time the group spent on duplicates.
	Hedged, HedgeWins, HedgeWaste int
	// Job exposes the raw timing (StartedAt/ReadyAt/DoneAt, Err).
	Job *core.Job
	// Collector exposes the raw per-group aggregates.
	Collector *core.Collector
}

// TenantReport is the per-tenant slice of a multi-tenant session
// report, in tenant registration order.
type TenantReport struct {
	// ID names the tenant.
	ID string
	// SLO is the latency target the tenant's goodput is measured
	// against (its own, or the session target when unset).
	SLO time.Duration
	// Arrived counts every item the tenant's arrival process offered;
	// Completed the ones a device finished.
	Arrived, Completed int
	// Shed, Expired and QuotaRejected count the tenant's own drops:
	// shed by its queue policy (or the shared FIFO queue), expired
	// past its SLO while queued, and rejected by its quota contract.
	Shed, Expired, QuotaRejected int
	// Throughput is the tenant's completion rate over the run window.
	Throughput float64
	// Latency is the tenant's per-item serving-latency distribution.
	Latency core.LatencySummary
	// Goodput is the fraction of the tenant's arrivals that completed
	// within the tenant's SLO — its drops count against it.
	Goodput float64
	// Stats exposes the raw scheduler counters for the tenant.
	Stats core.TenantStats
	// Collector exposes the raw per-tenant aggregates.
	Collector *core.Collector
}

// Report is the unified outcome of a session run.
type Report struct {
	// Targets holds one entry per device group, in group order.
	Targets []TargetReport
	// Images is the total number of completed inferences.
	Images int
	// Throughput is the aggregate steady-state rate of the whole
	// group (images over the pool's steady-state window).
	Throughput float64
	// TDPWatts and ImagesPerWatt aggregate Eq. (1) over all groups.
	TDPWatts      float64
	ImagesPerWatt float64
	// TopOneError and MeanConfidence are merged accuracy aggregates.
	TopOneError    float64
	MeanConfidence float64
	// EnergyJoules totals the metered energy of all VPU groups.
	EnergyJoules float64
	// Latency is the merged per-item serving-latency distribution
	// across all groups.
	Latency core.LatencySummary
	// SLO is the session's per-item serving deadline (0 = none).
	SLO time.Duration
	// Goodput is the fraction of arrivals that completed within the
	// SLO — shed and expired arrivals count against it. Without an
	// SLO it is the fraction of arrivals that completed at all.
	Goodput float64
	// ShedRate is the fraction of arrivals dropped at the admission
	// edge (shed by the overload policy or expired in the queue).
	ShedRate float64
	// Admission carries the ingress counters when the session ran
	// with WithAdmission (zero value otherwise).
	Admission core.AdmissionStats
	// Tenants holds one entry per declared tenant, in registration
	// order (nil for single-tenant sessions); TenantScheduler names
	// the admission-edge policy that multiplexed them.
	Tenants         []TenantReport
	TenantScheduler string
	// FaultsInjected counts the faults the session's plan drove into
	// the devices; FaultLog lists them (nil without WithFaults).
	FaultsInjected int
	FaultLog       *fault.Log
	// Aggregate availability under the fault plan: outage counts,
	// fault-triggered retries and drops, total downtime, mean time to
	// repair, and the device-time uptime fraction across all VPU
	// groups (1 when no stick was ever down).
	Outages, Recovered  int
	Retries, FaultDrops int
	Downtime, MTTR      time.Duration
	Uptime              float64
	// Hedge accounting under WithHedging: duplicates launched, wins
	// (the duplicate finished first) and wasted completions (a device
	// fully served a losing duplicate); HedgeWasteRate is waste as a
	// fraction of all device completions. All zero without hedging.
	Hedged, HedgeWins, HedgeWaste int
	HedgeWasteRate                float64
	// Arrivals names the open-loop arrival process driving the run
	// (nil for closed-loop runs).
	Arrivals core.Arrivals
	// SimTime is the total virtual time of the run (including setup).
	SimTime time.Duration
	// Routing names the scheduling policy that distributed the work
	// (meaningful when more than one group ran; pipeline sessions are
	// serial and report cuts instead).
	Routing core.Routing
	// Pipeline is true when the session ran as a model-parallel stage
	// chain; Cuts are the effective whole-network layer boundaries
	// between its stages (degenerate cuts collapse before the run, so
	// a collapsed session reports Pipeline=false).
	Pipeline bool
	Cuts     []int
	// Job is the aggregate job (the pool's, or the single target's).
	Job *core.Job
	// Collector is the merged collector; Results holds every result
	// when the session retained them.
	Collector *core.Collector
	// Results are the retained per-inference results (nil unless the
	// session was configured with retention).
	Results []core.Result
}

func (s *Session) buildReport(job *core.Job, pool *core.Pool, merged *core.Collector, perGroup []*core.Collector) *Report {
	rep := &Report{
		Images:         job.Images,
		Throughput:     job.Throughput(),
		TopOneError:    merged.TopOneError(),
		MeanConfidence: merged.MeanConfidence(),
		Latency:        merged.Latency(),
		SLO:            s.cfg.SLO,
		Goodput:        merged.Goodput(),
		ShedRate:       merged.ShedRate(),
		Arrivals:       s.cfg.Arrivals,
		SimTime:        s.env.Now(),
		Routing:        s.cfg.Routing,
		Job:            job,
		Collector:      merged,
		Results:        merged.Results,
	}
	if s.admission != nil {
		rep.Admission = s.admission.Stats()
	}
	if s.tenantMux != nil {
		rep.TenantScheduler = s.cfg.Tenants.Scheduler.String()
		span := job.Span().Seconds()
		for i, id := range s.tenantMux.TenantIDs() {
			st := s.tenantMux.Stats(id)
			c := s.perTenant[i]
			tr := TenantReport{
				ID:            id,
				SLO:           s.cfg.Tenants.SLOFor(id, s.cfg.SLO),
				Arrived:       st.Arrived,
				Completed:     c.N,
				Shed:          c.Shed,
				Expired:       c.Expired,
				QuotaRejected: c.QuotaRejected,
				Latency:       c.Latency(),
				Goodput:       c.Goodput(),
				Stats:         st,
				Collector:     c,
			}
			if span > 0 {
				tr.Throughput = float64(c.N) / span
			}
			rep.Tenants = append(rep.Tenants, tr)
		}
	}
	rep.FaultsInjected = s.faultLog.Count()
	rep.FaultLog = s.faultLog
	rep.Retries = merged.Retries
	rep.FaultDrops = merged.FaultDrops
	rep.Outages = merged.Outages
	rep.Recovered = merged.Repaired
	rep.MTTR = merged.MTTR()
	rep.Hedged = merged.Hedged
	rep.HedgeWins = merged.HedgeWins
	rep.HedgeWaste = merged.HedgeWaste
	rep.HedgeWasteRate = merged.HedgeWasteRate()
	if s.stageMode() {
		rep.Pipeline = true
		rep.Cuts = s.Cuts()
	}
	jobs := []*core.Job{job}
	if pool != nil {
		jobs = pool.ChildJobs()
	}
	if s.pipe != nil {
		jobs = s.pipe.StageJobs()
	}
	kinds := make([]GroupKind, len(s.targets))
	for i := range kinds {
		if s.stageMode() {
			kinds[i] = s.stages[i].spec.Group.Kind
		} else {
			kinds[i] = s.cfg.Groups[i].Kind
		}
	}
	var deviceSpan, deviceDown time.Duration
	for i, t := range s.targets {
		tj := jobs[i]
		tr := TargetReport{
			Name:           t.Name(),
			Kind:           kinds[i],
			Images:         tj.Images,
			Throughput:     tj.Throughput(),
			TDPWatts:       t.TDPWatts(),
			TopOneError:    perGroup[i].TopOneError(),
			MeanConfidence: perGroup[i].MeanConfidence(),
			Latency:        perGroup[i].Latency(),
			Outages:        perGroup[i].Outages,
			Recovered:      perGroup[i].Repaired,
			Retries:        perGroup[i].Retries,
			FaultDrops:     perGroup[i].FaultDrops,
			Hedged:         perGroup[i].Hedged,
			HedgeWins:      perGroup[i].HedgeWins,
			HedgeWaste:     perGroup[i].HedgeWaste,
			MTTR:           perGroup[i].MTTR(),
			Uptime:         1,
			Job:            tj,
			Collector:      perGroup[i],
		}
		if s.cfg.SLO > 0 {
			tr.Goodput = perGroup[i].Goodput()
		}
		if tr.TDPWatts > 0 {
			tr.ImagesPerWatt = power.ImagesPerWatt(tr.Throughput, tr.TDPWatts)
		}
		for _, d := range s.perVPU[i] {
			tr.EnergyJoules += d.Meter().EnergyJoules(s.env.Now())
			tr.AvgPowerWatts += d.Meter().AveragePowerWatts(s.env.Now())
		}
		// Uptime: the fraction of device-time the group's sticks were
		// serviceable over its own run window, abandoned devices
		// charged through the end of the window.
		if n := len(s.perVPU[i]); n > 0 && tj.Span() > 0 {
			tr.Downtime = perGroup[i].DowntimeThrough(tj.DoneAt)
			span := time.Duration(n) * tj.Span()
			deviceSpan += span
			deviceDown += tr.Downtime
			tr.Uptime = 1 - float64(tr.Downtime)/float64(span)
			if tr.Uptime < 0 {
				tr.Uptime = 0
			}
		}
		rep.Downtime += tr.Downtime
		rep.TDPWatts += tr.TDPWatts
		rep.EnergyJoules += tr.EnergyJoules
		rep.Targets = append(rep.Targets, tr)
	}
	rep.Uptime = 1
	if deviceSpan > 0 {
		rep.Uptime = 1 - float64(deviceDown)/float64(deviceSpan)
		if rep.Uptime < 0 {
			rep.Uptime = 0
		}
	}
	if rep.TDPWatts > 0 {
		rep.ImagesPerWatt = power.ImagesPerWatt(rep.Throughput, rep.TDPWatts)
	}
	return rep
}

// String renders the report as an aligned table, one row per group
// plus a totals row.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %10s %9s %8s %10s %10s\n",
		"group", "images", "img/s", "TDP(W)", "img/W", "top1-err", "energy(J)")
	row := func(name string, images int, ips, tdp, ipw, top1, joules float64) {
		fmt.Fprintf(&b, "%-18s %8d %10.1f %9.1f %8.2f %9.2f%% %10.1f\n",
			name, images, ips, tdp, ipw, top1*100, joules)
	}
	for _, t := range r.Targets {
		row(t.Name, t.Images, t.Throughput, t.TDPWatts, t.ImagesPerWatt, t.TopOneError, t.EnergyJoules)
	}
	if len(r.Targets) > 1 {
		row("total", r.Images, r.Throughput, r.TDPWatts, r.ImagesPerWatt, r.TopOneError, r.EnergyJoules)
	}
	if r.Latency.N > 0 {
		ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
		fmt.Fprintf(&b, "\n%-18s %10s %10s %10s %10s %11s %11s",
			"latency", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "queue(ms)", "service(ms)")
		if r.SLO > 0 {
			fmt.Fprintf(&b, " %8s", "goodput")
		}
		b.WriteString("\n")
		lrow := func(name string, l core.LatencySummary, goodput float64) {
			fmt.Fprintf(&b, "%-18s %10.1f %10.1f %10.1f %10.1f %11.1f %11.1f",
				name, ms(l.P50), ms(l.P95), ms(l.P99), ms(l.Max), ms(l.QueueMean), ms(l.ServiceMean))
			if r.SLO > 0 {
				fmt.Fprintf(&b, " %7.1f%%", goodput*100)
			}
			b.WriteString("\n")
		}
		for _, t := range r.Targets {
			lrow(t.Name, t.Latency, t.Goodput)
		}
		if len(r.Targets) > 1 {
			// The column is completion-based throughout (fraction of
			// served items meeting the SLO); the arrival-based goodput,
			// which also counts drops, is on the slo summary line below.
			merged := 0.0
			if r.Collector.N > 0 {
				merged = float64(r.Collector.WithinSLO) / float64(r.Collector.N)
			}
			lrow("total", r.Latency, merged)
		}
	}
	if r.SLO > 0 {
		fmt.Fprintf(&b, "slo %v: goodput %.1f%% of %d arrivals (shed %d, expired %d, failed %d)\n",
			r.SLO, r.Goodput*100, r.Collector.Arrivals(), r.Collector.Shed, r.Collector.Expired,
			r.Collector.FaultDrops)
	}
	if len(r.Tenants) > 0 {
		ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
		fmt.Fprintf(&b, "\n%-12s %8s %8s %8s %10s %10s %8s %6s %8s %6s\n",
			"tenant", "arrived", "served", "img/s", "p50(ms)", "p99(ms)", "goodput", "shed", "expired", "quota")
		for _, t := range r.Tenants {
			fmt.Fprintf(&b, "%-12s %8d %8d %8.1f %10.1f %10.1f %7.1f%% %6d %8d %6d\n",
				t.ID, t.Arrived, t.Completed, t.Throughput, ms(t.Latency.P50), ms(t.Latency.P99),
				t.Goodput*100, t.Shed, t.Expired, t.QuotaRejected)
		}
		fmt.Fprintf(&b, "tenancy: %d tenant(s) under %s scheduling\n", len(r.Tenants), r.TenantScheduler)
	}
	if r.FaultsInjected > 0 || r.Outages > 0 || r.Retries > 0 || r.FaultDrops > 0 {
		fmt.Fprintf(&b, "faults: %d injected; %d outage(s), %d recovered (MTTR %v), downtime %v; %d retried, %d dropped; uptime %.2f%%\n",
			r.FaultsInjected, r.Outages, r.Recovered, r.MTTR.Round(time.Millisecond),
			r.Downtime.Round(time.Millisecond), r.Retries, r.FaultDrops, r.Uptime*100)
	}
	if r.Hedged > 0 {
		fmt.Fprintf(&b, "hedging: %d duplicate(s) launched, %d win(s), %d wasted completion(s) (%.1f%% of device work)\n",
			r.Hedged, r.HedgeWins, r.HedgeWaste, r.HedgeWasteRate*100)
	}
	if r.Admission.Shrinks > 0 {
		fmt.Fprintf(&b, "admission: effective depth shrank %d time(s) with device health\n", r.Admission.Shrinks)
	}
	fmt.Fprintf(&b, "simulated time %v", r.SimTime)
	if r.Pipeline {
		fmt.Fprintf(&b, ", pipeline cut@%v", r.Cuts)
	} else if len(r.Targets) > 1 {
		fmt.Fprintf(&b, ", routing %v", r.Routing)
	}
	if r.Arrivals != nil {
		fmt.Fprintf(&b, ", arrivals %v", r.Arrivals)
	}
	b.WriteString("\n")
	return b.String()
}
