// Package stats provides the small set of descriptive statistics the
// experiment harness needs: per-subset means with standard-deviation
// error bars (every figure in the paper shows them), running
// accumulators, histograms and a least-squares line used for the
// Fig. 8b throughput projection.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of one sample set.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It panics on an empty input:
// every call site controls its sample sizes, so an empty set is a bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return Summary{
		N:      r.N,
		Mean:   r.Mean(),
		Std:    r.Std(),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: med,
	}
}

// String renders the summary as "mean ± std" the way the paper's error
// bars do.
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.Std, s.N)
}

// Running is a numerically stable (Welford) streaming accumulator.
// The zero value is ready to use.
type Running struct {
	N    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	if r.N == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.N++
	d := x - r.mean
	r.mean += d / float64(r.N)
	r.m2 += d * (x - r.mean)
}

// Mean returns the running mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance (n-1), or 0 when N < 2.
func (r *Running) Var() float64 {
	if r.N < 2 {
		return 0
	}
	return r.m2 / float64(r.N-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest value seen (0 for an empty accumulator).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest value seen (0 for an empty accumulator).
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into r (parallel reduction).
func (r *Running) Merge(o Running) {
	if o.N == 0 {
		return
	}
	if r.N == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.N), float64(o.N)
	d := o.mean - r.mean
	tot := n1 + n2
	r.mean += d * n2 / tot
	r.m2 += o.m2 + d*d*n1*n2/tot
	r.N += o.N
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// Mean is a convenience over Summarize for one-off use.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sample is an exact-quantile accumulator: it retains every value, so
// quantiles are computed from the sorted data rather than bucket
// midpoints. Use it for the small-to-medium samples of one run (per
// item latencies); use Histogram when memory must stay bounded. The
// zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records x.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of recorded values.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// Min returns the smallest value (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest value (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Quantile returns the exact q-quantile under the same nearest-rank
// convention as Histogram.Quantile (the value at index ⌊q·n⌋ of the
// sorted sample, clamped to the ends), so the two paths agree within
// one bucket width on the same data. q is clamped to [0, 1]; an empty
// sample returns 0.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.sort()
	i := int(q * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s.xs[i]
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Line is a least-squares fit y = Slope*x + Intercept.
type Line struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine computes the ordinary least-squares line through (xs, ys).
// It panics when fewer than two points are supplied or the lengths
// differ, since the projection code always controls its inputs.
func FitLine(xs, ys []float64) Line {
	if len(xs) != len(ys) {
		panic("stats: FitLine length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: FitLine needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: FitLine with degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	inter := (sy - slope*sx) / n
	var ssRes, ssTot float64
	my := sy / n
	for i := range xs {
		pred := slope*xs[i] + inter
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Line{Slope: slope, Intercept: inter, R2: r2}
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.Slope*x + l.Intercept }

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	under   int
	over    int
	n       int
}

// NewHistogram creates a histogram with nb equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if hi <= lo || nb <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, nb)}
}

// Add records x, counting out-of-range values separately.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // guard FP edge at Hi
			i--
		}
		h.Buckets[i]++
	}
}

// N returns the number of samples recorded, including out-of-range.
func (h *Histogram) N() int { return h.n }

// Outliers returns the counts below Lo and at/above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Quantile returns an approximate q-quantile (0 <= q <= 1) from the
// bucket midpoints. Out-of-range samples clamp to the bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return h.Lo
	}
	target := int(q * float64(h.n))
	seen := h.under
	if seen > target {
		return h.Lo
	}
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			return h.Lo + (float64(i)+0.5)*w
		}
	}
	return h.Hi
}
