package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample std with n-1: variance = 32/7.
	if !almostEq(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if !almostEq(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Median != 2 {
		t.Errorf("Median = %g, want 2", s.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 7, 3.25, 0, 11, -4.5}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	s := Summarize(xs)
	if !almostEq(r.Mean(), s.Mean, 1e-12) || !almostEq(r.Std(), s.Std, 1e-12) {
		t.Errorf("running %g/%g vs batch %g/%g", r.Mean(), r.Std(), s.Mean, s.Std)
	}
	if r.Min() != -4.5 || r.Max() != 11 {
		t.Errorf("running min/max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningSingleValue(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Mean() != 42 || r.Std() != 0 || r.Var() != 0 {
		t.Errorf("single value stats wrong: %g %g", r.Mean(), r.Std())
	}
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	var whole, a, b Running
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N != whole.N || !almostEq(a.Mean(), whole.Mean(), 1e-12) || !almostEq(a.Std(), whole.Std(), 1e-12) {
		t.Errorf("merge diverges: %v vs %v", a, whole)
	}
	var empty Running
	empty.Merge(a)
	if !almostEq(empty.Mean(), whole.Mean(), 1e-12) {
		t.Error("merge into empty lost data")
	}
	before := a
	var empty2 Running
	a.Merge(empty2)
	if a != before {
		t.Error("merging an empty accumulator changed state")
	}
}

// Property: merging any split of a sample equals accumulating the whole.
func TestQuickMergeEqualsWhole(t *testing.T) {
	f := func(raw []float64, cut uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		k := int(cut) % (len(xs) + 1)
		var whole, a, b Running
		for i, x := range xs {
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		tol := 1e-9 * (1 + math.Abs(whole.Mean()))
		return a.N == whole.N && almostEq(a.Mean(), whole.Mean(), tol) &&
			almostEq(a.Std(), whole.Std(), 1e-6*(1+whole.Std()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 9.5*x + 1.25
	}
	l := FitLine(xs, ys)
	if !almostEq(l.Slope, 9.5, 1e-9) || !almostEq(l.Intercept, 1.25, 1e-9) {
		t.Errorf("fit = %+v", l)
	}
	if !almostEq(l.R2, 1, 1e-12) {
		t.Errorf("R2 = %g, want 1", l.R2)
	}
	if !almostEq(l.At(32), 9.5*32+1.25, 1e-9) {
		t.Errorf("At(32) = %g", l.At(32))
	}
}

func TestFitLineNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1.1, 1.9, 3.2, 3.8}
	l := FitLine(xs, ys)
	if l.Slope <= 0.8 || l.Slope >= 1.2 {
		t.Errorf("Slope = %g, want near 1", l.Slope)
	}
	if l.R2 <= 0.95 || l.R2 > 1 {
		t.Errorf("R2 = %g", l.R2)
	}
}

func TestFitLinePanics(t *testing.T) {
	for _, tc := range []struct {
		name   string
		xs, ys []float64
	}{
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"too-few", []float64{1}, []float64{1}},
		{"degenerate", []float64{3, 3}, []float64{1, 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			FitLine(tc.xs, tc.ys)
		})
	}
}

func TestMeanConvenience(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Buckets {
		if c != 10 {
			t.Errorf("bucket %d = %d, want 10", i, c)
		}
	}
	h.Add(-1)
	h.Add(10) // boundary Hi counts as over
	h.Add(11)
	u, o := h.Outliers()
	if u != 1 || o != 2 {
		t.Errorf("outliers = %d/%d, want 1/2", u, o)
	}
	if h.N() != 103 {
		t.Errorf("N = %d", h.N())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median estimate = %g", med)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for hi <= lo")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be Lo")
	}
	h.Add(0.9)
	if q := h.Quantile(0); q <= 0 || q >= 1 {
		t.Errorf("q0 = %g", q)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

// TestHistogramQuantileFullEdges pins the q=0 / q=1 / empty contracts:
// empty returns Lo, q=0 the first occupied bucket's midpoint, q=1 Hi.
func TestHistogramQuantileFullEdges(t *testing.T) {
	empty := NewHistogram(0, 10, 5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want Lo=0", q, got)
		}
	}

	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{1, 3, 5, 7, 9} {
		h.Add(x)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want first bucket midpoint 1", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %g, want Hi=10", got)
	}

	// Out-of-range samples clamp to the bounds.
	lo := NewHistogram(0, 10, 5)
	lo.Add(-5)
	lo.Add(5)
	if got := lo.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) with an underflow sample = %g, want Lo=0", got)
	}
	hi := NewHistogram(0, 10, 5)
	hi.Add(5)
	hi.Add(15)
	if got := hi.Quantile(0.99); got != 10 {
		t.Errorf("Quantile(0.99) landing on the overflow = %g, want Hi=10", got)
	}
}

// TestSampleQuantile pins the exact-quantile accumulator: empty
// returns 0, q is clamped, and q=0 / q=1 hit min / max.
func TestSampleQuantile(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Error("empty sample should report zeros")
	}
	for _, x := range []float64{5, 1, 4, 2, 3} {
		s.Add(x)
	}
	cases := []struct{ q, want float64 }{
		{-0.5, 1}, {0, 1}, {0.5, 3}, {0.99, 5}, {1, 5}, {1.5, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if s.Min() != 1 || s.Max() != 5 || s.Mean() != 3 {
		t.Errorf("min/max/mean = %g/%g/%g", s.Min(), s.Max(), s.Mean())
	}
	// Adding after a quantile query must keep working (re-sort).
	s.Add(0.5)
	if got := s.Quantile(0); got != 0.5 {
		t.Errorf("Quantile(0) after Add = %g, want 0.5", got)
	}
}

// TestSampleAgreesWithHistogram: on the same data, the exact path and
// the bucketed path must agree within one bucket width at every
// quantile — the contract that lets large runs swap Sample for
// Histogram.
func TestSampleAgreesWithHistogram(t *testing.T) {
	const nb = 100
	h := NewHistogram(0, 1, nb)
	var s Sample
	// Deterministic but irregular values in [0, 1).
	x := 0.5
	for i := 0; i < 5000; i++ {
		x = 4 * 0.97 * x * (1 - x) // logistic map, stays in (0,1)
		h.Add(x)
		s.Add(x)
	}
	// q=1 is excluded: Histogram.Quantile(1) clamps to Hi by contract
	// regardless of where the data ends, while Sample reports the true
	// maximum.
	width := 1.0 / nb
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99} {
		exact, approx := s.Quantile(q), h.Quantile(q)
		if diff := exact - approx; diff < -width || diff > width {
			t.Errorf("q=%g: exact %g vs histogram %g differ by more than bucket width %g",
				q, exact, approx, width)
		}
	}
}
