// Package devsim models the paper's two baseline devices: the dual
// Xeon E5-2609v2 workstation running the Intel-optimized Caffe-MKL
// fork, and the Quadro K4000 running Caffe-cuDNN. Both are batch
// engines: Caffe resizes the input blob to the batch size and runs the
// whole batch through the network at once (§III), which is exactly why
// their scaling curves differ so sharply from the multi-VPU pipeline.
//
// Like the VPU model, each is a calibrated analytic model:
//
//   - CPU: the conv GEMMs already saturate all 8 cores at batch 1, so
//     batching only amortizes a fixed per-batch framework overhead —
//     reproducing the paper's 26.0 → 22.7 ms/img (a mere 1.1×).
//   - GPU: a Kepler-class part is occupancy-starved at batch 1; its
//     utilization follows a saturation curve u(b) = Umax·b/(b+k),
//     reproducing 25.9 → 13.5 ms/img (1.9×) and 79.9 img/s at 16.
//
// Calibration targets are the paper's measured single-input latencies
// (26.0 ms CPU, 25.9 ms GPU) and the batch-8 points; the batch-16
// points of Fig. 8b must then emerge.
package devsim

import (
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
)

// CPUConfig models the dual-socket Xeon E5-2609v2 workstation.
type CPUConfig struct {
	Sockets        int
	CoresPerSocket int
	ClockHz        float64
	// FlopsPerCycle is per-core single-precision throughput: Ivy
	// Bridge EP issues one 8-wide AVX multiply and one add per cycle.
	FlopsPerCycle float64
	// Efficiency is the fraction of peak MKL sustains on the conv
	// GEMMs (large SGEMM on MKL runs close to peak; calibrated to the
	// paper's 22.2 ms/img asymptote).
	Efficiency float64
	// BatchOverhead is the fixed per-batch framework cost (blob
	// reshape, layer setup, thread fork/join) — the only thing
	// batching amortizes on this device.
	BatchOverhead time.Duration
	JitterSigma   float64
	TDPWatts      float64
}

// DefaultCPUConfig returns the calibrated Xeon model.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		Sockets:        2,
		CoresPerSocket: 4,
		ClockHz:        2.5e9,
		FlopsPerCycle:  8,
		Efficiency:     0.905,
		BatchOverhead:  3800 * time.Microsecond,
		JitterSigma:    0.015,
		TDPWatts:       80,
	}
}

// PeakFlops returns the workstation's aggregate peak (160 GFLOP/s for
// the default config).
func (c CPUConfig) PeakFlops() float64 {
	return float64(c.Sockets*c.CoresPerSocket) * c.ClockHz * c.FlopsPerCycle
}

func (c CPUConfig) validate() error {
	if c.Sockets <= 0 || c.CoresPerSocket <= 0 || c.ClockHz <= 0 || c.FlopsPerCycle <= 0 {
		return fmt.Errorf("devsim: invalid CPU architecture %+v", c)
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		return fmt.Errorf("devsim: CPU efficiency %g out of (0,1]", c.Efficiency)
	}
	if c.BatchOverhead < 0 || c.JitterSigma < 0 || c.TDPWatts <= 0 {
		return fmt.Errorf("devsim: invalid CPU overheads %+v", c)
	}
	return nil
}

// GPUConfig models the Quadro K4000 (Kepler GK106, 768 CUDA cores).
type GPUConfig struct {
	CudaCores int
	ClockHz   float64
	// UtilizationMax and UtilizationK define the occupancy curve
	// u(b) = UtilizationMax · b / (b + UtilizationK): small batches
	// cannot fill the SMX array, so per-image time shrinks with batch
	// until the curve saturates.
	UtilizationMax float64
	UtilizationK   float64
	// PCIeBandwidth is host-to-device copy throughput for the input
	// blob (the paper accounts for host→device transfer time).
	PCIeBandwidth float64
	JitterSigma   float64
	TDPWatts      float64
}

// DefaultGPUConfig returns the calibrated K4000 model.
func DefaultGPUConfig() GPUConfig {
	return GPUConfig{
		CudaCores:      768,
		ClockHz:        810e6,
		UtilizationMax: 0.2220,
		UtilizationK:   1.219,
		PCIeBandwidth:  6e9,
		JitterSigma:    0.015,
		TDPWatts:       80,
	}
}

// PeakFlops returns the card's peak single-precision throughput
// (1.244 TFLOP/s for the default config).
func (c GPUConfig) PeakFlops() float64 {
	return float64(c.CudaCores) * c.ClockHz * 2 // FMA
}

func (c GPUConfig) validate() error {
	if c.CudaCores <= 0 || c.ClockHz <= 0 {
		return fmt.Errorf("devsim: invalid GPU architecture %+v", c)
	}
	if c.UtilizationMax <= 0 || c.UtilizationMax > 1 || c.UtilizationK <= 0 {
		return fmt.Errorf("devsim: invalid GPU utilization curve %+v", c)
	}
	if c.PCIeBandwidth <= 0 || c.JitterSigma < 0 || c.TDPWatts <= 0 {
		return fmt.Errorf("devsim: invalid GPU overheads %+v", c)
	}
	return nil
}

// Workload is the static description a batch engine prices: the
// network's per-image cost.
type Workload struct {
	MACs       int64 // per image
	InputBytes int64 // per image, at the device's input dtype width
}

// WorkloadOf extracts the Workload from a graph (FP32 input pixels:
// both Caffe baselines feed float32 blobs).
func WorkloadOf(g *nn.Graph) Workload {
	total := g.TotalStats()
	return Workload{
		MACs:       total.MACs,
		InputBytes: int64(g.InputShape().Elems()) * 4,
	}
}

// CPU is the Caffe-MKL batch engine.
type CPU struct {
	cfg    CPUConfig
	work   Workload
	jitter *rng.Source

	batches int64
	images  int64
	busy    time.Duration
	slow    float64 // fault-injected straggler factor (<=1 = none)
	oom     int     // fault-injected pending batch failures
}

// InjectSlowdown stretches every subsequent batch ×factor — the
// straggler fault hook internal/fault drives (a co-scheduled job, a
// thermal event). ClearSlowdown ends the window.
func (c *CPU) InjectSlowdown(factor float64) {
	if factor > 1 {
		c.slow = factor
	}
}

// ClearSlowdown ends a straggler window.
func (c *CPU) ClearSlowdown() { c.slow = 0 }

// InjectBatchFailures makes the next n batch submissions fail with an
// OOM-style allocator error — the batch-engine fault hook
// internal/fault drives (fault.BatchOOM). The consuming target splits
// the failed batch and retries (core.BatchTarget).
func (c *CPU) InjectBatchFailures(n int) {
	if n > 0 {
		c.oom += n
	}
}

// TakeBatchFailure consumes one pending injected batch failure,
// reporting whether the next submission should fail. Deterministic:
// failures fire in submission order, exactly as many as injected.
func (c *CPU) TakeBatchFailure() bool {
	if c.oom > 0 {
		c.oom--
		return true
	}
	return false
}

// NewCPU builds a CPU engine for the workload.
func NewCPU(cfg CPUConfig, w Workload, seed *rng.Source) (*CPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if w.MACs <= 0 {
		return nil, fmt.Errorf("devsim: empty workload")
	}
	return &CPU{cfg: cfg, work: w, jitter: seed.Derive("cpu-jitter")}, nil
}

// Config returns the engine configuration.
func (c *CPU) Config() CPUConfig { return c.cfg }

// BaseBatchDuration is the jitter-free latency of one batch of size b.
func (c *CPU) BaseBatchDuration(b int) time.Duration {
	if b <= 0 {
		panic(fmt.Sprintf("devsim: batch size %d", b))
	}
	flops := 2 * float64(c.work.MACs) * float64(b)
	exec := flops / (c.cfg.PeakFlops() * c.cfg.Efficiency)
	return c.cfg.BatchOverhead + time.Duration(exec*float64(time.Second))
}

// NextBatchDuration prices the next batch with jitter (and any
// fault-injected straggler window) applied.
func (c *CPU) NextBatchDuration(b int) time.Duration {
	d := time.Duration(float64(c.BaseBatchDuration(b)) * c.jitter.Jitter(c.cfg.JitterSigma))
	if c.slow > 1 {
		d = time.Duration(float64(d) * c.slow)
	}
	c.batches++
	c.images += int64(b)
	c.busy += d
	return d
}

// Batches reports how many batches the engine executed.
func (c *CPU) Batches() int64 { return c.batches }

// Images reports how many images the engine processed.
func (c *CPU) Images() int64 { return c.images }

// Busy reports the accumulated execution time.
func (c *CPU) Busy() time.Duration { return c.busy }

// TDPWatts reports the configured thermal design power.
func (c *CPU) TDPWatts() float64 { return c.cfg.TDPWatts }

// GPU is the Caffe-cuDNN batch engine.
type GPU struct {
	cfg    GPUConfig
	work   Workload
	jitter *rng.Source

	batches int64
	images  int64
	busy    time.Duration
	slow    float64 // fault-injected straggler factor (<=1 = none)
	oom     int     // fault-injected pending batch failures
}

// InjectSlowdown stretches every subsequent batch ×factor (straggler
// fault hook); ClearSlowdown ends the window.
func (g *GPU) InjectSlowdown(factor float64) {
	if factor > 1 {
		g.slow = factor
	}
}

// ClearSlowdown ends a straggler window.
func (g *GPU) ClearSlowdown() { g.slow = 0 }

// InjectBatchFailures makes the next n batch submissions fail with an
// OOM-style allocator error (fault.BatchOOM) — cudaMalloc failing on
// a fragmented device is the canonical incident.
func (g *GPU) InjectBatchFailures(n int) {
	if n > 0 {
		g.oom += n
	}
}

// TakeBatchFailure consumes one pending injected batch failure,
// reporting whether the next submission should fail.
func (g *GPU) TakeBatchFailure() bool {
	if g.oom > 0 {
		g.oom--
		return true
	}
	return false
}

// NewGPU builds a GPU engine for the workload.
func NewGPU(cfg GPUConfig, w Workload, seed *rng.Source) (*GPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if w.MACs <= 0 {
		return nil, fmt.Errorf("devsim: empty workload")
	}
	return &GPU{cfg: cfg, work: w, jitter: seed.Derive("gpu-jitter")}, nil
}

// Config returns the engine configuration.
func (g *GPU) Config() GPUConfig { return g.cfg }

// Utilization returns the occupancy model's utilization at batch b.
func (g *GPU) Utilization(b int) float64 {
	return g.cfg.UtilizationMax * float64(b) / (float64(b) + g.cfg.UtilizationK)
}

// BaseBatchDuration is the jitter-free latency of one batch of size b:
// host-to-device copy plus execution at the batch's utilization.
func (g *GPU) BaseBatchDuration(b int) time.Duration {
	if b <= 0 {
		panic(fmt.Sprintf("devsim: batch size %d", b))
	}
	copySec := float64(g.work.InputBytes) * float64(b) / g.cfg.PCIeBandwidth
	flops := 2 * float64(g.work.MACs) * float64(b)
	execSec := flops / (g.cfg.PeakFlops() * g.Utilization(b))
	return time.Duration((copySec + execSec) * float64(time.Second))
}

// NextBatchDuration prices the next batch with jitter (and any
// fault-injected straggler window) applied.
func (g *GPU) NextBatchDuration(b int) time.Duration {
	d := time.Duration(float64(g.BaseBatchDuration(b)) * g.jitter.Jitter(g.cfg.JitterSigma))
	if g.slow > 1 {
		d = time.Duration(float64(d) * g.slow)
	}
	g.batches++
	g.images += int64(b)
	g.busy += d
	return d
}

// Batches reports how many batches the engine executed.
func (g *GPU) Batches() int64 { return g.batches }

// Images reports how many images the engine processed.
func (g *GPU) Images() int64 { return g.images }

// Busy reports the accumulated execution time.
func (g *GPU) Busy() time.Duration { return g.busy }

// TDPWatts reports the configured thermal design power.
func (g *GPU) TDPWatts() float64 { return g.cfg.TDPWatts }
