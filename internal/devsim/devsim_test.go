package devsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
)

func googWorkload(t testing.TB) Workload {
	t.Helper()
	return WorkloadOf(nn.NewGoogLeNet(rng.New(1)))
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestPeakFlops(t *testing.T) {
	if got := DefaultCPUConfig().PeakFlops(); math.Abs(got-160e9) > 1 {
		t.Errorf("CPU peak = %g, want 160e9", got)
	}
	if got := DefaultGPUConfig().PeakFlops(); math.Abs(got-1.24416e12) > 1 {
		t.Errorf("GPU peak = %g, want 1.24416e12", got)
	}
}

// TestCPUCalibration anchors the CPU model to the paper's measured
// points: 26.0 ms at batch 1, 22.7 ms/img at batch 8 and the derived
// 14.7% improvement.
func TestCPUCalibration(t *testing.T) {
	cpu, err := NewCPU(DefaultCPUConfig(), googWorkload(t), rng.New(0))
	if err != nil {
		t.Fatal(err)
	}
	b1 := msOf(cpu.BaseBatchDuration(1))
	if math.Abs(b1-26.0) > 0.8 {
		t.Errorf("CPU batch-1 latency = %.2f ms, want ~26.0", b1)
	}
	b8 := msOf(cpu.BaseBatchDuration(8)) / 8
	if math.Abs(b8-22.7) > 0.7 {
		t.Errorf("CPU batch-8 per-image = %.2f ms, want ~22.7", b8)
	}
	scaling := b1 / b8
	if scaling < 1.08 || scaling > 1.22 {
		t.Errorf("CPU scaling at 8 = %.2fx, paper reports 1.1x", scaling)
	}
	// Fig. 8b: at batch 16 the CPU should top out near 44.5 img/s.
	b16 := cpu.BaseBatchDuration(16).Seconds() / 16
	ips := 1 / b16
	if math.Abs(ips-44.5) > 1.5 {
		t.Errorf("CPU batch-16 throughput = %.1f img/s, paper reports 44.5", ips)
	}
}

// TestGPUCalibration anchors the GPU model: 25.9 ms at batch 1,
// 13.5 ms/img at batch 8 (1.9x), 79.9 img/s at 16.
func TestGPUCalibration(t *testing.T) {
	gpu, err := NewGPU(DefaultGPUConfig(), googWorkload(t), rng.New(0))
	if err != nil {
		t.Fatal(err)
	}
	b1 := msOf(gpu.BaseBatchDuration(1))
	if math.Abs(b1-25.9) > 0.8 {
		t.Errorf("GPU batch-1 latency = %.2f ms, want ~25.9", b1)
	}
	b8 := msOf(gpu.BaseBatchDuration(8)) / 8
	if math.Abs(b8-13.5) > 0.5 {
		t.Errorf("GPU batch-8 per-image = %.2f ms, want ~13.5", b8)
	}
	scaling := b1 / b8
	if scaling < 1.82 || scaling > 2.02 {
		t.Errorf("GPU scaling at 8 = %.2fx, paper reports 1.9x", scaling)
	}
	ips16 := 16 / gpu.BaseBatchDuration(16).Seconds()
	if math.Abs(ips16-79.9) > 2.5 {
		t.Errorf("GPU batch-16 throughput = %.1f img/s, paper reports 79.9", ips16)
	}
}

func TestGPUUtilizationCurveMonotone(t *testing.T) {
	gpu, err := NewGPU(DefaultGPUConfig(), googWorkload(t), rng.New(0))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for b := 1; b <= 64; b *= 2 {
		u := gpu.Utilization(b)
		if u <= prev {
			t.Errorf("utilization not increasing at batch %d: %g <= %g", b, u, prev)
		}
		if u > gpu.Config().UtilizationMax {
			t.Errorf("utilization %g exceeds max", u)
		}
		prev = u
	}
}

func TestPerImageLatencyMonotoneInBatch(t *testing.T) {
	w := googWorkload(t)
	cpu, _ := NewCPU(DefaultCPUConfig(), w, rng.New(0))
	gpu, _ := NewGPU(DefaultGPUConfig(), w, rng.New(0))
	for b := 1; b < 32; b++ {
		c1 := cpu.BaseBatchDuration(b).Seconds() / float64(b)
		c2 := cpu.BaseBatchDuration(b+1).Seconds() / float64(b+1)
		if c2 > c1+1e-12 {
			t.Errorf("CPU per-image latency increased from batch %d to %d", b, b+1)
		}
		g1 := gpu.BaseBatchDuration(b).Seconds() / float64(b)
		g2 := gpu.BaseBatchDuration(b+1).Seconds() / float64(b+1)
		if g2 > g1+1e-12 {
			t.Errorf("GPU per-image latency increased from batch %d to %d", b, b+1)
		}
	}
}

func TestJitterAccountingAndDeterminism(t *testing.T) {
	w := googWorkload(t)
	a, _ := NewCPU(DefaultCPUConfig(), w, rng.New(7))
	b, _ := NewCPU(DefaultCPUConfig(), w, rng.New(7))
	var seq []time.Duration
	for i := 0; i < 50; i++ {
		seq = append(seq, a.NextBatchDuration(8))
	}
	for i := 0; i < 50; i++ {
		if d := b.NextBatchDuration(8); d != seq[i] {
			t.Fatalf("CPU jitter stream diverged at %d", i)
		}
	}
	if a.Batches() != 50 || a.Images() != 400 {
		t.Errorf("accounting: %d batches, %d images", a.Batches(), a.Images())
	}
	if a.Busy() <= 0 {
		t.Error("busy time not accumulated")
	}
	if a.TDPWatts() != 80 {
		t.Errorf("TDP = %g", a.TDPWatts())
	}
}

func TestGPUJitterDeterminism(t *testing.T) {
	w := googWorkload(t)
	a, _ := NewGPU(DefaultGPUConfig(), w, rng.New(7))
	b, _ := NewGPU(DefaultGPUConfig(), w, rng.New(7))
	for i := 0; i < 20; i++ {
		if a.NextBatchDuration(4) != b.NextBatchDuration(4) {
			t.Fatal("GPU jitter stream diverged")
		}
	}
	if a.Images() != 80 || a.TDPWatts() != 80 {
		t.Error("GPU accounting wrong")
	}
}

func TestValidationErrors(t *testing.T) {
	w := googWorkload(t)
	badCPU := DefaultCPUConfig()
	badCPU.Efficiency = 0
	if _, err := NewCPU(badCPU, w, rng.New(0)); err == nil {
		t.Error("zero efficiency accepted")
	}
	badCPU = DefaultCPUConfig()
	badCPU.Sockets = 0
	if _, err := NewCPU(badCPU, w, rng.New(0)); err == nil {
		t.Error("zero sockets accepted")
	}
	if _, err := NewCPU(DefaultCPUConfig(), Workload{}, rng.New(0)); err == nil {
		t.Error("empty workload accepted")
	}
	badGPU := DefaultGPUConfig()
	badGPU.UtilizationK = 0
	if _, err := NewGPU(badGPU, w, rng.New(0)); err == nil {
		t.Error("zero K accepted")
	}
	badGPU = DefaultGPUConfig()
	badGPU.PCIeBandwidth = 0
	if _, err := NewGPU(badGPU, w, rng.New(0)); err == nil {
		t.Error("zero PCIe accepted")
	}
	if _, err := NewGPU(DefaultGPUConfig(), Workload{}, rng.New(0)); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestBatchSizePanics(t *testing.T) {
	w := googWorkload(t)
	cpu, _ := NewCPU(DefaultCPUConfig(), w, rng.New(0))
	gpu, _ := NewGPU(DefaultGPUConfig(), w, rng.New(0))
	for _, f := range []func(){
		func() { cpu.BaseBatchDuration(0) },
		func() { gpu.BaseBatchDuration(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWorkloadOf(t *testing.T) {
	w := googWorkload(t)
	if w.MACs < 1_500_000_000 || w.MACs > 1_700_000_000 {
		t.Errorf("MACs = %d", w.MACs)
	}
	if w.InputBytes != 3*224*224*4 {
		t.Errorf("InputBytes = %d", w.InputBytes)
	}
}

// TestCrossDeviceShape verifies the paper's §V headline: a single VPU
// inference (~100 ms) is roughly 4x slower than CPU/GPU single-input
// latency (~26 ms). The VPU side is asserted in internal/vpu; here we
// pin the CPU/GPU side of the ratio.
func TestSingleInputLatenciesNearEqual(t *testing.T) {
	w := googWorkload(t)
	cpu, _ := NewCPU(DefaultCPUConfig(), w, rng.New(0))
	gpu, _ := NewGPU(DefaultGPUConfig(), w, rng.New(0))
	c := cpu.BaseBatchDuration(1).Seconds()
	g := gpu.BaseBatchDuration(1).Seconds()
	if math.Abs(c-g)/c > 0.05 {
		t.Errorf("CPU (%.1f ms) and GPU (%.1f ms) single-input latencies should nearly match (paper: 26.0 vs 25.9)",
			c*1e3, g*1e3)
	}
}

// TestInjectSlowdownStretchesBatches: the straggler hook stretches
// subsequent batches on both engines; clearing restores the baseline
// (modulo jitter, which the shared seed makes comparable).
func TestInjectSlowdownStretchesBatches(t *testing.T) {
	w := Workload{MACs: 1e9, InputBytes: 1 << 20}
	cpu, err := NewCPU(DefaultCPUConfig(), w, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := NewGPU(DefaultGPUConfig(), w, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, base time.Duration, next func(int) time.Duration, inject func(float64), clear func()) {
		inject(4)
		slowed := next(8)
		if slowed < base*3 {
			t.Errorf("%s: slowed batch %v not ~4x the %v base", name, slowed, base)
		}
		clear()
		restored := next(8)
		if restored > base*3/2 {
			t.Errorf("%s: batch after clear %v, want near base %v", name, restored, base)
		}
	}
	check("cpu", cpu.BaseBatchDuration(8), cpu.NextBatchDuration, cpu.InjectSlowdown, cpu.ClearSlowdown)
	check("gpu", gpu.BaseBatchDuration(8), gpu.NextBatchDuration, gpu.InjectSlowdown, gpu.ClearSlowdown)
}
