// Package tenant is the multi-tenant serving configuration surface:
// a registry of traffic classes — identity, fair-share weight,
// priority class, per-tenant SLO deadline, quotas and shed policy —
// plus the scheduler selection for the admission edge. The runtime
// mechanics (per-tenant arrival pumps, deficit-round-robin dispatch,
// quota gates) live in internal/core's TenantMux; this package owns
// declaration and validation, so sessions and benches describe a
// tenant mix without touching scheduler internals.
package tenant

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// Scheduler selects the admission-edge scheduling policy of a
// multi-tenant session. It mirrors core.TenantPolicy one to one.
type Scheduler int

const (
	// FIFO multiplexes every tenant into one shared queue in arrival
	// order — no isolation; the control configuration.
	FIFO Scheduler = Scheduler(core.TenantFIFO)
	// WeightedFair drains per-tenant queues by deficit-round-robin
	// over the tenant weights: backlogged tenants receive service
	// proportional to weight, idle shares redistribute.
	WeightedFair Scheduler = Scheduler(core.TenantFair)
	// Priority serves strict priority tiers (lower Tenant.Priority
	// first), deficit-round-robin within a tier.
	Priority Scheduler = Scheduler(core.TenantPriority)
)

// String names the scheduler.
func (s Scheduler) String() string { return core.TenantPolicy(s).String() }

// Tenant declares one traffic class of a multi-tenant session.
type Tenant struct {
	// ID names the tenant (unique, non-empty); it is stamped onto
	// every item and carried through to the Result and the per-tenant
	// report.
	ID string
	// Weight is the fair-share weight (default 1).
	Weight float64
	// Priority is the strict-priority class under the Priority
	// scheduler: lower is served first. Ignored otherwise.
	Priority int
	// SLO is the tenant's own latency target: per-tenant goodput is
	// measured against it, and an item still queued when it lapses is
	// dropped as expired. 0 inherits the session SLO (which may itself
	// be 0: no deadline).
	SLO time.Duration
	// Arrivals is the tenant's open-loop arrival process (required).
	Arrivals core.Arrivals
	// QueueDepth bounds the tenant's own admission queue (0 =
	// unbounded).
	QueueDepth int
	// Overload selects what a full tenant queue does with the
	// tenant's next arrival (default core.ShedNewest).
	Overload core.OverloadPolicy
	// MaxInFlight caps admitted-but-uncompleted items (0 =
	// unlimited); excess arrivals are rejected as quota drops.
	MaxInFlight int
	// RatePerSec caps the admitted rate with a virtual-time token
	// bucket (0 = unlimited); Burst is the bucket depth (default 1).
	RatePerSec float64
	Burst      int
}

// Config is the multi-tenant session description: the scheduler at
// the admission edge plus the tenant registry in registration order
// (the order scheduling ties and reporting follow).
type Config struct {
	// Scheduler selects the admission policy (default FIFO).
	Scheduler Scheduler
	// Tenants is the registry, in registration order.
	Tenants []Tenant
	// SharedDepth bounds the FIFO shared queue (0 = sum of the tenant
	// queue depths). Ignored by the fair schedulers.
	SharedDepth int
	// SharedOverload is the FIFO shared queue's overload policy
	// (default core.ShedNewest). Ignored by the fair schedulers.
	SharedOverload core.OverloadPolicy
}

// Enabled reports whether the config declares any tenants.
func (c Config) Enabled() bool { return len(c.Tenants) > 0 }

// Validate checks the registry: unique non-empty IDs, an arrival
// process per tenant, finite non-negative weights/quotas, a known
// scheduler.
func (c Config) Validate() error {
	if c.Scheduler < FIFO || c.Scheduler > Priority {
		return fmt.Errorf("tenant: unknown scheduler %v", c.Scheduler)
	}
	if c.SharedDepth < 0 {
		return fmt.Errorf("tenant: negative shared depth %d", c.SharedDepth)
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.ID == "" {
			return fmt.Errorf("tenant: tenant with empty ID")
		}
		if seen[t.ID] {
			return fmt.Errorf("tenant: duplicate tenant %q", t.ID)
		}
		seen[t.ID] = true
		if t.Arrivals == nil {
			return fmt.Errorf("tenant: %q has no arrival process", t.ID)
		}
		if t.Weight < 0 || math.IsInf(t.Weight, 1) || math.IsNaN(t.Weight) {
			return fmt.Errorf("tenant: %q weight %g (need finite >= 0)", t.ID, t.Weight)
		}
		if t.SLO < 0 {
			return fmt.Errorf("tenant: %q negative SLO %v", t.ID, t.SLO)
		}
		if t.QueueDepth < 0 || t.MaxInFlight < 0 || t.Burst < 0 {
			return fmt.Errorf("tenant: %q negative queue depth, quota or burst", t.ID)
		}
		if t.RatePerSec < 0 || math.IsInf(t.RatePerSec, 1) || math.IsNaN(t.RatePerSec) {
			return fmt.Errorf("tenant: %q rate quota %g (need finite >= 0)", t.ID, t.RatePerSec)
		}
	}
	return nil
}

// IDs returns the tenant IDs in registration order.
func (c Config) IDs() []string {
	ids := make([]string, len(c.Tenants))
	for i, t := range c.Tenants {
		ids[i] = t.ID
	}
	return ids
}

// Lookup returns the tenant with the given ID.
func (c Config) Lookup(id string) (Tenant, bool) {
	for _, t := range c.Tenants {
		if t.ID == id {
			return t, true
		}
	}
	return Tenant{}, false
}

// MuxOptions lowers the config into the core scheduler's options.
// defaultSLO fills tenants whose SLO is unset (the session-level
// target); the caller supplies the seed and drop hook.
func (c Config) MuxOptions(defaultSLO time.Duration) core.TenantMuxOptions {
	lanes := make([]core.TenantLane, len(c.Tenants))
	for i, t := range c.Tenants {
		slo := t.SLO
		if slo == 0 {
			slo = defaultSLO
		}
		lanes[i] = core.TenantLane{
			ID:          t.ID,
			Weight:      t.Weight,
			Priority:    t.Priority,
			Arrivals:    t.Arrivals,
			Depth:       t.QueueDepth,
			Policy:      t.Overload,
			Deadline:    slo,
			MaxInFlight: t.MaxInFlight,
			RatePerSec:  t.RatePerSec,
			Burst:       t.Burst,
		}
	}
	return core.TenantMuxOptions{
		Lanes:        lanes,
		Policy:       core.TenantPolicy(c.Scheduler),
		SharedDepth:  c.SharedDepth,
		SharedPolicy: c.SharedOverload,
	}
}

// SLOFor returns the latency target tenant goodput is measured
// against: the tenant's own SLO, or defaultSLO when unset.
func (c Config) SLOFor(id string, defaultSLO time.Duration) time.Duration {
	if t, ok := c.Lookup(id); ok && t.SLO > 0 {
		return t.SLO
	}
	return defaultSLO
}
