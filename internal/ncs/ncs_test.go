package ncs

import (
	"math"
	"testing"
	"time"

	"repro/internal/graphfile"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/usb"
)

// rig builds an env with n sticks on the paper's testbed topology and
// a compiled blob of the given graph.
type rig struct {
	env     *sim.Env
	devices []*Device
	blob    []byte
	graph   *nn.Graph
}

func newRig(t testing.TB, n int, g *nn.Graph) *rig {
	t.Helper()
	env := sim.NewEnv()
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	seed := rng.New(1234)
	devices := make([]*Device, n)
	for i, port := range ports {
		d, err := NewDevice(env, port.Name(), port, DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = d
	}
	blob, err := graphfile.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, devices: devices, blob: blob, graph: g}
}

func TestOpenAllocateCloseLifecycle(t *testing.T) {
	r := newRig(t, 1, nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Errorf("Open: %v", err)
		}
		if err := d.Open(p); err != ErrAlreadyOpen {
			t.Errorf("second Open: %v", err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatalf("AllocateGraph: %v", err)
		}
		if _, err := d.AllocateGraph(p, r.blob, GraphOptions{}); err != ErrGraphAllocated {
			t.Errorf("second AllocateGraph: %v", err)
		}
		if g.Info().Layers != r.graph.Len() {
			t.Errorf("info layers = %d", g.Info().Layers)
		}
		if err := d.Close(p); err != nil {
			t.Errorf("Close: %v", err)
		}
		// Close returns the device to the closed state (so recovery can
		// re-open it); a second Close is "not open", like before Open.
		if err := d.Close(p); err != ErrDeviceNotOpen {
			t.Errorf("second Close: %v", err)
		}
	})
	r.env.Run()
}

// TestCloseReopenReallocate is the recovery-path regression test: a
// Close → Open → AllocateGraph cycle must start from a clean slate —
// the detached first graph must not trip ErrGraphAllocated — and the
// re-allocated graph must serve inferences normally.
func TestCloseReopenReallocate(t *testing.T) {
	r := newRig(t, 1, nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g1, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Queue one inference, close while it drains, and check the
		// pending result remains retrievable through the detached handle.
		if err := g1.LoadTensor(p, nil, "before-close"); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(p); err != nil {
			t.Fatalf("Close: %v", err)
		}
		res, err := g1.GetResult(p)
		if err != nil {
			t.Fatalf("GetResult after Close: %v", err)
		}
		if res.UserParam.(string) != "before-close" {
			t.Errorf("pending result lost across Close: %v", res.UserParam)
		}
		// The detached graph must refuse new work...
		if err := g1.LoadTensor(p, nil, nil); err != ErrClosed {
			t.Errorf("LoadTensor on detached graph: %v", err)
		}
		// ...and the reopened device must re-allocate without tripping
		// ErrGraphAllocated.
		if err := d.Open(p); err != nil {
			t.Fatalf("re-Open: %v", err)
		}
		g2, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatalf("re-AllocateGraph: %v", err)
		}
		if err := g2.LoadTensor(p, nil, "after-reopen"); err != nil {
			t.Fatal(err)
		}
		res, err = g2.GetResult(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.UserParam.(string) != "after-reopen" {
			t.Errorf("re-allocated graph result: %v", res.UserParam)
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

func TestOperationsBeforeOpenFail(t *testing.T) {
	r := newRig(t, 1, nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if _, err := d.AllocateGraph(p, r.blob, GraphOptions{}); err != ErrDeviceNotOpen {
			t.Errorf("AllocateGraph before open: %v", err)
		}
		if err := d.Close(p); err != ErrDeviceNotOpen {
			t.Errorf("Close before open: %v", err)
		}
	})
	r.env.Run()
}

func TestDeviceRejectsCorruptBlob(t *testing.T) {
	r := newRig(t, 1, nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1)))
	d := r.devices[0]
	bad := append([]byte(nil), r.blob...)
	bad[len(bad)/2] ^= 0xFF
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AllocateGraph(p, bad, GraphOptions{}); err == nil {
			t.Error("corrupt blob accepted")
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

// TestSingleStickLatencyCalibration is the end-to-end anchor: one
// LoadTensor + GetResult round trip for GoogLeNet must land on the
// paper's measured 100.7 ms single-input latency (±3%).
func TestSingleStickLatencyCalibration(t *testing.T) {
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	var latencies []time.Duration
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			start := p.Now()
			if err := g.LoadTensor(p, nil, i); err != nil {
				t.Fatal(err)
			}
			if _, err := g.GetResult(p); err != nil {
				t.Fatal(err)
			}
			latencies = append(latencies, p.Now()-start)
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	mean := sum.Seconds() / float64(len(latencies)) * 1e3
	if math.Abs(mean-100.7)/100.7 > 0.03 {
		t.Errorf("single-stick latency = %.2f ms, paper measures 100.7 (±3%%)", mean)
	}
}

func TestResultsArriveInLoadOrder(t *testing.T) {
	r := newRig(t, 1, nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Queue two (FIFO depth), then interleave.
		for i := 0; i < 2; i++ {
			if err := g.LoadTensor(p, nil, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 2; i < 6; i++ {
			res, err := g.GetResult(p)
			if err != nil {
				t.Fatal(err)
			}
			if res.UserParam.(int) != i-2 {
				t.Errorf("result %d carries userParam %v", i-2, res.UserParam)
			}
			if err := g.LoadTensor(p, nil, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 4; i < 6; i++ {
			res, err := g.GetResult(p)
			if err != nil {
				t.Fatal(err)
			}
			if res.UserParam.(int) != i {
				t.Errorf("tail result carries %v, want %d", res.UserParam, i)
			}
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

func TestLoadTensorOverlapsExecution(t *testing.T) {
	// Listing 1's point: after LoadTensor returns, the host is free
	// while the VPU executes. Host-side busy time for LoadTensor must
	// be far below the inference latency.
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	var loadTime, roundTrip time.Duration
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		if err := g.LoadTensor(p, nil, nil); err != nil {
			t.Fatal(err)
		}
		loadTime = p.Now() - t0
		if _, err := g.GetResult(p); err != nil {
			t.Fatal(err)
		}
		roundTrip = p.Now() - t0
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
	if loadTime >= roundTrip/10 {
		t.Errorf("LoadTensor blocked %v of a %v round trip; it must return promptly", loadTime, roundTrip)
	}
}

func TestFIFOBackpressure(t *testing.T) {
	// With FIFO depth 2, the third LoadTensor must block until the
	// first inference completes.
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	var thirdLoadDone, firstExecDone time.Duration
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		base := g.Engine().BaseExecDuration()
		for i := 0; i < 3; i++ {
			if err := g.LoadTensor(p, nil, i); err != nil {
				t.Fatal(err)
			}
			if i == 2 {
				thirdLoadDone = p.Now()
			}
		}
		firstExecDone = base // approximately; compare magnitudes below
		for i := 0; i < 3; i++ {
			if _, err := g.GetResult(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
	if thirdLoadDone < firstExecDone*9/10 {
		t.Errorf("third LoadTensor returned at %v, before the first inference (~%v) freed a slot",
			thirdLoadDone, firstExecDone)
	}
}

func TestFunctionalInference(t *testing.T) {
	g := nn.NewMicroGoogLeNet(nn.MicroConfig{Classes: 10, Input: 32}, rng.New(3))
	r := newRig(t, 1, g)
	d := r.devices[0]
	img := tensor.New(3, 32, 32)
	img.FillNormal(rng.New(9), 0, 64)
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		gr, err := d.AllocateGraph(p, r.blob, GraphOptions{Functional: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := gr.LoadTensor(p, nil, nil); err != ErrMissingInput {
			t.Errorf("nil input on functional graph: %v", err)
		}
		if err := gr.LoadTensor(p, img, "tag"); err != nil {
			t.Fatal(err)
		}
		res, err := gr.GetResult(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("inference error: %v", res.Err)
		}
		if res.Output == nil || !res.Output.ShapeOf.Equal(tensor.Shape{10}) {
			t.Fatalf("output = %v", res.Output)
		}
		if !res.Output.IsFP16Exact() {
			t.Error("NCS output must be FP16")
		}
		if res.UserParam.(string) != "tag" {
			t.Error("userParam lost")
		}
		if res.ExecTime <= 0 {
			t.Error("exec time missing")
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

func TestPowerMeterTracksActivity(t *testing.T) {
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := g.LoadTensor(p, nil, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := g.GetResult(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
	cfg := d.Config()
	if d.Meter().PeakWatts() != cfg.ActiveWatts {
		t.Errorf("peak = %g, want %g", d.Meter().PeakWatts(), cfg.ActiveWatts)
	}
	avg := d.Meter().AveragePowerWatts(r.env.Now())
	// Most of the horizon is inference (duty cycle > 90% once open),
	// but boot time drags the average below active power.
	if avg <= cfg.IdleWatts || avg >= cfg.ActiveWatts {
		t.Errorf("average power %g outside (%g, %g)", avg, cfg.IdleWatts, cfg.ActiveWatts)
	}
}

func TestTwoSticksRunConcurrently(t *testing.T) {
	r := newRig(t, 2, nn.NewGoogLeNet(rng.New(1)))
	perDevice := 5
	for _, d := range r.devices {
		d := d
		r.env.Process(d.Name()+"-host", func(p *sim.Proc) {
			if err := d.Open(p); err != nil {
				t.Error(err)
				return
			}
			g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perDevice; i++ {
				if err := g.LoadTensor(p, nil, nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := g.GetResult(p); err != nil {
					t.Error(err)
					return
				}
			}
			if err := d.Close(p); err != nil {
				t.Error(err)
			}
		})
	}
	r.env.Run()
	// Both sticks boot (~0.85 s) and allocate the 14 MB blob (~0.17 s)
	// in parallel, then run 5 inferences each (~0.5 s). A concurrent
	// run lands near 1.6 s; a serialized one near 3.1 s.
	if r.env.Now() > 2200*time.Millisecond {
		t.Errorf("2-stick makespan %v suggests no concurrency", r.env.Now())
	}
	if r.env.Now() < 1300*time.Millisecond {
		t.Errorf("2-stick makespan %v implausibly fast", r.env.Now())
	}
}

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.FIFODepth = 0
	if _, err := NewDevice(env, "x", ports[0], bad, rng.New(0)); err == nil {
		t.Error("FIFO 0 accepted")
	}
	bad = DefaultConfig()
	bad.AllocParseBandwidth = 0
	if _, err := NewDevice(env, "x", ports[0], bad, rng.New(0)); err == nil {
		t.Error("zero parse bandwidth accepted")
	}
	bad = DefaultConfig()
	bad.ActiveWatts = 0.1 // below idle
	if _, err := NewDevice(env, "x", ports[0], bad, rng.New(0)); err == nil {
		t.Error("active < idle accepted")
	}
	if _, err := NewDevice(env, "x", nil, DefaultConfig(), rng.New(0)); err == nil {
		t.Error("nil port accepted")
	}
}
