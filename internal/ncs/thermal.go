package ncs

import (
	"math"
	"time"
)

// Thermal model. The real NCSDK exposes device thermal stats and two
// documented throttling levels (MVNC_THERMAL_STATS /
// MVNC_THERMAL_THROTTLING_LEVEL): at level 1 the firmware lowers the
// SHAVE clock, at level 2 it cuts it further to protect the stick. The
// paper's experiments never report throttling — sustained GoogLeNet
// inference keeps the MA2450 just below its first threshold — and the
// default model reproduces that; the thermal ablation configs push the
// thresholds down to show what throttling does to the Fig. 6 curves.
//
// The stick is modelled as a first-order RC thermal circuit:
//
//	T(t+dt) = T_ss + (T(t) − T_ss)·exp(−dt/τ),  T_ss = ambient + R·P
//
// with P the current power state, R the junction-to-ambient thermal
// resistance and τ the thermal time constant.

// ThermalConfig parameterizes the stick's thermal behaviour.
type ThermalConfig struct {
	// AmbientC is the environment temperature.
	AmbientC float64
	// ResistanceCPerW is junction-to-ambient thermal resistance.
	ResistanceCPerW float64
	// TimeConstant is the RC time constant of the stick's thermal
	// mass.
	TimeConstant time.Duration
	// Level1C and Level2C are the throttling thresholds.
	Level1C, Level2C float64
	// Level1Factor and Level2Factor scale the SHAVE clock at each
	// level (1.0 = no slowdown).
	Level1Factor, Level2Factor float64
}

// DefaultThermalConfig models the bare stick in open air: sustained
// inference at ~2.4 W settles near 73 °C, just below the 80 °C first
// threshold — the paper's testbed ran throttle-free.
func DefaultThermalConfig() ThermalConfig {
	return ThermalConfig{
		AmbientC:        25,
		ResistanceCPerW: 20,
		TimeConstant:    40 * time.Second,
		Level1C:         80,
		Level2C:         95,
		Level1Factor:    0.70,
		Level2Factor:    0.40,
	}
}

func (c ThermalConfig) validate() bool {
	return c.ResistanceCPerW > 0 && c.TimeConstant > 0 &&
		c.Level2C >= c.Level1C &&
		c.Level1Factor > 0 && c.Level1Factor <= 1 &&
		c.Level2Factor > 0 && c.Level2Factor <= c.Level1Factor
}

// ThermalStats is the device thermal telemetry (MVNC_THERMAL_STATS).
type ThermalStats struct {
	// TemperatureC is the junction temperature estimate.
	TemperatureC float64
	// ThrottleLevel is 0 (full speed), 1 or 2.
	ThrottleLevel int
	// ThrottledInferences counts inferences executed below full clock.
	ThrottledInferences int64
	// PeakC is the highest temperature reached.
	PeakC float64
}

// thermalState is the device-side integrator.
type thermalState struct {
	cfg        ThermalConfig
	tempC      float64
	lastUpdate time.Duration
	lastWatts  float64
	stats      ThermalStats
}

func newThermalState(cfg ThermalConfig, idleWatts float64) *thermalState {
	t := &thermalState{cfg: cfg, tempC: cfg.AmbientC, lastWatts: idleWatts}
	t.stats.TemperatureC = cfg.AmbientC
	t.stats.PeakC = cfg.AmbientC
	return t
}

// advance integrates the temperature to `now` under the power level
// that has been applied since the last update, then records the new
// power level.
func (t *thermalState) advance(now time.Duration, watts float64) {
	dt := now - t.lastUpdate
	if dt > 0 {
		tss := t.cfg.AmbientC + t.cfg.ResistanceCPerW*t.lastWatts
		decay := math.Exp(-dt.Seconds() / t.cfg.TimeConstant.Seconds())
		t.tempC = tss + (t.tempC-tss)*decay
		if t.tempC > t.stats.PeakC {
			t.stats.PeakC = t.tempC
		}
	}
	t.lastUpdate = now
	t.lastWatts = watts
	t.stats.TemperatureC = t.tempC
}

// level returns the current throttle level and clock factor.
func (t *thermalState) level() (int, float64) {
	switch {
	case t.tempC >= t.cfg.Level2C:
		return 2, t.cfg.Level2Factor
	case t.tempC >= t.cfg.Level1C:
		return 1, t.cfg.Level1Factor
	default:
		return 0, 1.0
	}
}

// ThermalStats returns the device's thermal telemetry as of the last
// runtime activity.
func (d *Device) ThermalStats() ThermalStats {
	if d.thermal == nil {
		return ThermalStats{}
	}
	s := d.thermal.stats
	s.ThrottleLevel, _ = d.thermal.level()
	return s
}
