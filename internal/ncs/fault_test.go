package ncs

import (
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestInjectHangAndTimeout: a hung device accepts work but never
// completes it; GetResultWithin reports the timeout instead of
// deadlocking, and a Reset + re-open cycle brings the device back.
func TestInjectHangAndTimeout(t *testing.T) {
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d.InjectHang()
		if err := g.LoadTensor(p, nil, 0); err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		if _, err := g.GetResultWithin(p, 500*time.Millisecond); err != ErrResultTimeout {
			t.Fatalf("GetResultWithin on hung device: %v", err)
		}
		if wait := p.Now() - t0; wait != 500*time.Millisecond {
			t.Errorf("timeout waited %v, want exactly 500ms", wait)
		}
		// Host-side recovery: reset, re-open, re-allocate, and the
		// device serves again.
		d.Reset()
		if err := d.Open(p); err != nil {
			t.Fatalf("re-Open after reset: %v", err)
		}
		g2, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatalf("re-AllocateGraph after reset: %v", err)
		}
		if err := g2.LoadTensor(p, nil, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := g2.GetResultWithin(p, 2*time.Second); err != nil {
			t.Fatalf("inference after recovery: %v", err)
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

// TestInjectLinkDropWakesBlockedGetResult: a link drop mid-inference
// must wake a host blocked in GetResult with ErrClosed (MVNC_GONE)
// rather than hanging it, and subsequent calls must fail too.
func TestInjectLinkDropWakesBlockedGetResult(t *testing.T) {
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.LoadTensor(p, nil, 0); err != nil {
			t.Fatal(err)
		}
		// Drop the link while the inference is in flight (~100 ms).
		r.env.After(10*time.Millisecond, d.InjectLinkDrop)
		if _, err := g.GetResult(p); err != ErrClosed {
			t.Fatalf("GetResult across a link drop: %v", err)
		}
		if err := g.LoadTensor(p, nil, 1); err != ErrClosed {
			t.Errorf("LoadTensor after link drop: %v", err)
		}
		// Re-enumeration brings the device back.
		d.Reset()
		if err := d.Open(p); err != nil {
			t.Fatalf("Open after reset: %v", err)
		}
		if _, err := d.AllocateGraph(p, r.blob, GraphOptions{}); err != nil {
			t.Fatalf("AllocateGraph after reset: %v", err)
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

// TestInjectTransientErrors: the next n inferences complete with
// ErrTransient, then the device is healthy again.
func TestInjectTransientErrors(t *testing.T) {
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d.InjectTransientErrors(2)
		for i := 0; i < 3; i++ {
			if err := g.LoadTensor(p, nil, i); err != nil {
				t.Fatal(err)
			}
			res, err := g.GetResult(p)
			if err != nil {
				t.Fatal(err)
			}
			if i < 2 && res.Err != ErrTransient {
				t.Errorf("inference %d: err = %v, want ErrTransient", i, res.Err)
			}
			if i == 2 && res.Err != nil {
				t.Errorf("inference 2 after the burst: err = %v", res.Err)
			}
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
}

// TestInjectSlowdownStretchesService: a ×4 straggler window must make
// the round trip measurably slower, and clearing it must restore the
// baseline.
func TestInjectSlowdownStretchesService(t *testing.T) {
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	var normal, slowed time.Duration
	r.env.Process("host", func(p *sim.Proc) {
		if err := d.Open(p); err != nil {
			t.Fatal(err)
		}
		g, err := d.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Fatal(err)
		}
		round := func() time.Duration {
			t0 := p.Now()
			if err := g.LoadTensor(p, nil, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := g.GetResult(p); err != nil {
				t.Fatal(err)
			}
			return p.Now() - t0
		}
		normal = round()
		d.InjectSlowdown(4)
		slowed = round()
		d.ClearSlowdown()
		restored := round()
		if restored > normal*13/10 {
			t.Errorf("round trip after ClearSlowdown %v; baseline %v", restored, normal)
		}
		if err := d.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
	// Execution dominates the ~101 ms round trip, so ×4 on the SHAVE
	// clock should land well past 3× overall.
	if slowed < normal*3 {
		t.Errorf("slowed round trip %v not ~4x the %v baseline", slowed, normal)
	}
}
