// Package ncs models the Intel Neural Compute Stick: the USB-attached
// SoC that wraps a Myriad 2 VPU with two RISC management cores running
// a real-time OS, a firmware boot step, and an inference FIFO (§II-B
// of the paper, Fig. 2).
//
// Its API deliberately mirrors the Neural Compute API (NCAPI 1.x) that
// the paper's NCSw framework is built on, including the semantics of
// Listing 1: LoadTensor transfers an input and queues execution
// without waiting for the inference, and GetResult blocks the host
// process until the result for the oldest queued inference is ready —
// the split that makes computation/communication overlap (and thus the
// multi-VPU pipeline of Fig. 4) possible.
//
// Everything here runs in virtual time on internal/sim; functional
// (numeric) inference is optional per graph.
package ncs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graphfile"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/usb"
	"repro/internal/vpu"
)

// Status errors mirror the mvncStatus codes of the NCSDK.
var (
	// ErrDeviceNotOpen is returned for operations before Open.
	ErrDeviceNotOpen = errors.New("ncs: device not open (MVNC_DEVICE_NOT_OPEN)")
	// ErrAlreadyOpen is returned for a second Open.
	ErrAlreadyOpen = errors.New("ncs: device already open (MVNC_BUSY)")
	// ErrGraphAllocated is returned when allocating a second graph.
	ErrGraphAllocated = errors.New("ncs: a graph is already allocated (MVNC_BUSY)")
	// ErrNoGraph is returned by inference calls before AllocateGraph.
	ErrNoGraph = errors.New("ncs: no graph allocated (MVNC_UNSUPPORTED_GRAPH_FILE)")
	// ErrClosed is returned for operations after Close or after the
	// device's USB link dropped.
	ErrClosed = errors.New("ncs: device closed (MVNC_GONE)")
	// ErrMissingInput is returned when a functional graph is fed a nil
	// tensor.
	ErrMissingInput = errors.New("ncs: functional graph requires an input tensor")
	// ErrResultTimeout is returned by GetResultWithin when no result
	// lands inside the completion timeout — the health-monitoring
	// signal that a device has hung.
	ErrResultTimeout = errors.New("ncs: no result within the completion timeout (MVNC_TIMEOUT)")
	// ErrTransient marks an inference the device runtime failed (a
	// recoverable Myriad error, typically fault-injected); the item is
	// safe to redeliver.
	ErrTransient = errors.New("ncs: inference failed on device (MVNC_MYRIAD_ERROR)")
)

// Config models the stick around the VPU.
type Config struct {
	// FIFODepth is the number of queued inferences the device accepts
	// before LoadTensor blocks (the NCSDK allowed two in flight,
	// enabling double buffering).
	FIFODepth int
	// FirmwareBytes is the firmware image pushed at Open ("when the
	// NCAPI initializes and opens a device, a firmware is loaded onto
	// the NCS").
	FirmwareBytes int
	// BootTime is the RTOS boot after firmware load.
	BootTime time.Duration
	// AllocParseBandwidth is the on-device rate for validating and
	// unpacking the graph blob into LPDDR3 (bytes/s).
	AllocParseBandwidth float64
	// CommandOverhead is the RISC runtime cost to dequeue a job and
	// launch it on the SHAVE array.
	CommandOverhead time.Duration
	// ResultHeaderBytes pads every result transfer (status + metadata).
	ResultHeaderBytes int

	// Stick-level power states (the chip's own draw is inside
	// vpu.Config; these cover RISC cores, DDR and the USB PHY).
	IdleWatts   float64
	BootWatts   float64
	ActiveWatts float64

	// Thermal models the stick's temperature and the firmware's
	// throttling thresholds (see thermal.go).
	Thermal ThermalConfig
}

// DefaultConfig returns the calibrated NCS model: with the default VPU
// and USB configs, a single-stick GoogLeNet round trip costs ≈100.7 ms,
// the paper's measured value.
func DefaultConfig() Config {
	return Config{
		FIFODepth:           2,
		FirmwareBytes:       1800 << 10,
		BootTime:            850 * time.Millisecond,
		AllocParseBandwidth: 400e6,
		CommandOverhead:     300 * time.Microsecond,
		ResultHeaderBytes:   128,
		IdleWatts:           0.70,
		BootWatts:           1.50,
		ActiveWatts:         2.50,
		Thermal:             DefaultThermalConfig(),
	}
}

func (c Config) validate() error {
	if c.FIFODepth < 1 {
		return fmt.Errorf("ncs: FIFO depth %d", c.FIFODepth)
	}
	if c.FirmwareBytes < 0 || c.BootTime < 0 || c.CommandOverhead < 0 || c.ResultHeaderBytes < 0 {
		return fmt.Errorf("ncs: negative size or duration in %+v", c)
	}
	if c.AllocParseBandwidth <= 0 {
		return fmt.Errorf("ncs: non-positive parse bandwidth")
	}
	if c.IdleWatts < 0 || c.BootWatts < c.IdleWatts || c.ActiveWatts < c.IdleWatts {
		return fmt.Errorf("ncs: implausible power states %+v", c)
	}
	if !c.Thermal.validate() {
		return fmt.Errorf("ncs: implausible thermal model %+v", c.Thermal)
	}
	return nil
}

type deviceState int

const (
	stateClosed deviceState = iota
	stateOpen
	stateGone
)

// Device is one simulated Neural Compute Stick.
type Device struct {
	name    string
	env     *sim.Env
	port    *usb.Port
	cfg     Config
	state   deviceState
	graph   *Graph
	meter   *power.Meter
	seed    *rng.Source
	thermal *thermalState
	// onExec observes each on-device execution span (for Fig. 4
	// timelines); nil disables.
	onExec func(device string, start, end time.Duration)

	// Fault-injection state (driven by internal/fault hooks).
	hung      bool    // firmware frozen: inferences never complete
	slow      float64 // service-time multiplier (straggler window); <=1 = none
	transient int     // inferences left to fail with ErrTransient
}

// InjectHang freezes the device firmware: queued inferences are still
// accepted (until the FIFO fills) but never complete, exactly like a
// wedged RTOS. Only a host-side Reset (or InjectLinkDrop) ends the
// hang. Safe to call from scheduler callbacks.
func (d *Device) InjectHang() { d.hung = true }

// InjectLinkDrop severs the USB link: the device is gone (MVNC_GONE),
// the current graph dies with its in-flight work, and every call fails
// with ErrClosed until the host calls Reset and re-opens the device.
func (d *Device) InjectLinkDrop() {
	if d.state == stateGone {
		return
	}
	d.state = stateGone
	d.meter.SetPower(d.env.Now(), 0) // unplugged
	d.killGraph()
}

// InjectTransientErrors makes the next n inferences complete with
// ErrTransient instead of a result — the recoverable single-inference
// failure mode.
func (d *Device) InjectTransientErrors(n int) {
	if n > 0 {
		d.transient += n
	}
}

// InjectSlowdown stretches every subsequent inference ×factor — the
// straggler fault. ClearSlowdown ends the window.
func (d *Device) InjectSlowdown(factor float64) {
	if factor > 1 {
		d.slow = factor
	}
}

// ClearSlowdown ends a straggler window.
func (d *Device) ClearSlowdown() { d.slow = 0 }

// Reset force-returns the device to the closed state from wherever it
// is — the host-side power-cycle/re-enumeration step of recovery. The
// current graph (if any) dies immediately, in-flight inferences are
// lost, and a frozen firmware is cleared; the caller then pays the
// full Open + AllocateGraph cost to bring the device back. Safe to
// call from scheduler callbacks (it never blocks).
func (d *Device) Reset() {
	d.killGraph()
	if d.state != stateClosed {
		d.meter.SetPower(d.env.Now(), 0) // power-cycled
	}
	d.state = stateClosed
	d.hung = false
	d.transient = 0
}

// killGraph detaches and poisons the current graph: its runtime exits
// at the next checkpoint, blocked producers and consumers are woken,
// and pending results are lost.
func (d *Device) killGraph() {
	g := d.graph
	d.graph = nil
	if g == nil || g.dead {
		return
	}
	g.dead = true
	// Wake the runtime wherever it is parked: a hung runtime waits on
	// hangWait; an idle one blocks on the FIFO (TryPut only fails when
	// the FIFO is full, in which case the runtime is mid-inference and
	// sees dead at its next checkpoint). A host blocked in GetResult is
	// woken with a poison result and re-checks dead.
	g.hangWait.TryPut(struct{}{})
	g.fifo.TryPut(job{shutdown: true})
	g.results.TryPut(Result{})
}

// SetExecObserver registers a callback invoked with the virtual-time
// span of every inference executed on the SHAVE array.
func (d *Device) SetExecObserver(fn func(device string, start, end time.Duration)) {
	d.onExec = fn
}

// NewDevice creates a closed device attached to the given USB port.
func NewDevice(env *sim.Env, name string, port *usb.Port, cfg Config, seed *rng.Source) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if port == nil {
		return nil, fmt.Errorf("ncs: device %q has no USB port", name)
	}
	return &Device{
		name:    name,
		env:     env,
		port:    port,
		cfg:     cfg,
		meter:   power.NewMeter(name, cfg.IdleWatts),
		seed:    seed.Derive("ncs/" + name),
		thermal: newThermalState(cfg.Thermal, cfg.IdleWatts),
	}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Meter exposes the stick's power meter.
func (d *Device) Meter() *power.Meter { return d.meter }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Open pushes the firmware over USB and boots the RTOS (the NCAPI's
// mvncOpenDevice). It must be called from a simulated process.
func (d *Device) Open(p *sim.Proc) error {
	switch d.state {
	case stateOpen:
		return ErrAlreadyOpen
	case stateGone:
		return ErrClosed
	}
	d.meter.SetPower(p.Now(), d.cfg.BootWatts)
	d.port.Transfer(p, d.cfg.FirmwareBytes)
	p.Sleep(d.cfg.BootTime)
	if d.state == stateGone {
		// The link dropped mid-boot; the fault must not be papered
		// over by the epilogue.
		return ErrClosed
	}
	d.meter.SetPower(p.Now(), d.cfg.IdleWatts)
	d.state = stateOpen
	return nil
}

// GraphOptions configures AllocateGraph.
type GraphOptions struct {
	// VPU overrides the chip model (zero value = vpu.DefaultConfig()).
	VPU *vpu.Config
	// Functional enables numeric FP16 inference; LoadTensor then
	// requires real input tensors and results carry confidence
	// vectors.
	Functional bool
}

// AllocateGraph ships a compiled blob to the device, which parses and
// validates it (rejecting corrupted blobs exactly like the firmware
// does) and readies the VPU engine (mvncAllocateGraph).
func (d *Device) AllocateGraph(p *sim.Proc, blob []byte, opts GraphOptions) (*Graph, error) {
	if d.state == stateClosed {
		return nil, ErrDeviceNotOpen
	}
	if d.state == stateGone {
		return nil, ErrClosed
	}
	if d.graph != nil {
		return nil, ErrGraphAllocated
	}

	d.port.Transfer(p, len(blob))
	p.Sleep(time.Duration(float64(len(blob)) / d.cfg.AllocParseBandwidth * float64(time.Second)))
	if d.state != stateOpen {
		// The link dropped while the blob was in flight.
		return nil, ErrClosed
	}
	net, info, err := graphfile.Parse(blob)
	if err != nil {
		return nil, fmt.Errorf("ncs: device %s rejected graph: %w", d.name, err)
	}
	vcfg := vpu.DefaultConfig()
	if opts.VPU != nil {
		vcfg = *opts.VPU
	}
	engine, err := vpu.NewEngine(vcfg, net, d.seed)
	if err != nil {
		return nil, fmt.Errorf("ncs: %w", err)
	}

	g := &Graph{
		dev:        d,
		engine:     engine,
		info:       info,
		functional: opts.Functional,
		inputBytes: info.InputShape.Elems() * 2, // FP16 tensor
		resultBytes: func() int {
			out := net.OutputShape().Elems()
			return out*2 + d.cfg.ResultHeaderBytes
		}(),
		fifo:     sim.NewQueue[job](d.env, d.name+"/fifo", d.cfg.FIFODepth),
		results:  sim.NewQueue[Result](d.env, d.name+"/results", 0),
		hangWait: sim.NewQueue[struct{}](d.env, d.name+"/hang", 0),
	}
	d.graph = g
	d.env.Process(d.name+"/runtime", g.runtime)
	return g, nil
}

// Close drains the device and shuts the runtime down
// (mvncCloseDevice). Pending queued inferences are still executed and
// their results remain retrievable through the (now detached) Graph
// handle. The device returns to the closed state: a Close → Open →
// AllocateGraph cycle starts from a clean slate — the recovery path
// re-allocates without tripping ErrGraphAllocated.
func (d *Device) Close(p *sim.Proc) error {
	switch d.state {
	case stateClosed:
		return ErrDeviceNotOpen
	case stateGone:
		return ErrClosed
	}
	if d.graph != nil {
		d.graph.fifo.Put(p, job{shutdown: true})
		d.graph = nil
	}
	d.state = stateClosed
	return nil
}

// job is one queued inference (or the shutdown marker).
type job struct {
	id        int64
	input     *tensor.T
	userParam any
	shutdown  bool
}

// Result is what GetResult returns: the NCAPI gives back the output
// tensor (class confidences) plus the userParam passed to LoadTensor.
type Result struct {
	ID        int64
	Output    *tensor.T // nil unless the graph is functional
	UserParam any
	ExecTime  time.Duration
	Err       error // functional inference failure, if any
}

// Graph is an allocated network on one device.
type Graph struct {
	dev         *Device
	engine      *vpu.Engine
	info        *graphfile.Info
	functional  bool
	inputBytes  int
	resultBytes int

	fifo    *sim.Queue[job]
	results *sim.Queue[Result]
	nextID  int64
	// dead marks a killed graph (link drop, device reset): the runtime
	// exits at its next checkpoint and every host call fails with
	// ErrClosed.
	dead bool
	// hangWait parks the runtime while the firmware is frozen; a kill
	// wakes it so the runtime can exit.
	hangWait *sim.Queue[struct{}]
}

// Info returns the parsed blob header.
func (g *Graph) Info() graphfile.Info { return *g.info }

// Engine exposes the underlying VPU engine (for profiling tools).
func (g *Graph) Engine() *vpu.Engine { return g.engine }

// InputBytes returns the per-inference USB payload size.
func (g *Graph) InputBytes() int { return g.inputBytes }

// LoadTensor transfers one input to the stick and queues its
// execution (mvncLoadTensor). It returns once the transfer completes
// and the job is accepted — blocking only while the device FIFO is
// full — so the host can overlap other work while the VPU runs.
//
// img must be a preprocessed CHW tensor when the graph is functional;
// for pure performance runs it may be nil (the simulated transfer
// still moves the full tensor size). userParam is returned with the
// matching Result.
func (g *Graph) LoadTensor(p *sim.Proc, img *tensor.T, userParam any) error {
	if g.dead || g.dev.graph != g || g.dev.state != stateOpen {
		return ErrClosed
	}
	if g.functional && img == nil {
		return ErrMissingInput
	}
	g.dev.port.Transfer(p, g.inputBytes)
	if g.dead {
		// The link dropped mid-transfer.
		return ErrClosed
	}
	g.nextID++
	g.fifo.Put(p, job{id: g.nextID, input: img, userParam: userParam})
	if g.dead {
		return ErrClosed
	}
	return nil
}

// GetResult blocks until the oldest queued inference finishes, then
// transfers its result back (mvncGetResult). Results arrive strictly
// in LoadTensor order. A graph killed mid-wait (link drop, device
// reset) fails with ErrClosed — its pending results are lost with the
// device.
func (g *Graph) GetResult(p *sim.Proc) (Result, error) {
	if g.dead {
		return Result{}, ErrClosed
	}
	res := g.results.Get(p)
	if g.dead {
		return Result{}, ErrClosed
	}
	g.dev.port.Transfer(p, g.resultBytes)
	return res, nil
}

// GetResultWithin is GetResult with a completion timeout: it waits at
// most d of virtual time before giving up with ErrResultTimeout. This
// is the health-monitoring primitive of the self-healing pipeline — a
// hung device never completes, so a bounded wait is the only
// deadlock-free way to notice.
func (g *Graph) GetResultWithin(p *sim.Proc, d time.Duration) (Result, error) {
	if g.dead {
		return Result{}, ErrClosed
	}
	res, ok := g.results.GetWithin(p, d)
	if g.dead {
		return Result{}, ErrClosed
	}
	if !ok {
		return Result{}, ErrResultTimeout
	}
	g.dev.port.Transfer(p, g.resultBytes)
	return res, nil
}

// runtime is the RISC scheduler loop: dequeue, launch on the SHAVE
// array, publish the result. Fault checkpoints: a killed graph (link
// drop, reset) exits at the next wake-up, discarding its work; a
// frozen firmware parks at the publish point until the host resets the
// device.
func (g *Graph) runtime(p *sim.Proc) {
	for {
		j := g.fifo.Get(p)
		if g.dead {
			g.drainFIFO()
			return
		}
		if j.shutdown {
			return
		}
		p.Sleep(g.dev.cfg.CommandOverhead)
		if g.dead {
			g.drainFIFO()
			return
		}
		g.dev.meter.SetPower(p.Now(), g.dev.cfg.ActiveWatts)
		g.dev.thermal.advance(p.Now(), g.dev.cfg.ActiveWatts)
		execStart := p.Now()
		d := g.engine.NextExecDuration()
		// Thermal throttling: above the firmware thresholds the SHAVE
		// clock drops, stretching the inference.
		if level, factor := g.dev.thermal.level(); level > 0 {
			d = time.Duration(float64(d) / factor)
			g.dev.thermal.stats.ThrottledInferences++
		}
		// Straggler fault: a slowdown window stretches the service time.
		if g.dev.slow > 1 {
			d = time.Duration(float64(d) * g.dev.slow)
		}
		p.Sleep(d)
		if g.dead {
			g.drainFIFO()
			return
		}
		g.dev.meter.SetPower(p.Now(), g.dev.cfg.IdleWatts)
		g.dev.thermal.advance(p.Now(), g.dev.cfg.IdleWatts)
		if g.dev.onExec != nil {
			g.dev.onExec(g.dev.name, execStart, p.Now())
		}

		res := Result{ID: j.id, UserParam: j.userParam, ExecTime: d}
		if g.dev.transient > 0 {
			// Fault injection: this inference fails recoverably.
			g.dev.transient--
			res.Err = ErrTransient
		} else if g.functional && j.input != nil {
			out, err := g.engine.Infer(j.input)
			res.Output, res.Err = out, err
		}
		// Firmware hang: stop publishing until the host resets the
		// device (which kills this graph and wakes us to exit).
		for g.dev.hung && !g.dead {
			g.hangWait.Get(p)
		}
		if g.dead {
			g.drainFIFO()
			return
		}
		g.results.Put(p, res)
	}
}

// drainFIFO empties a dead graph's FIFO so a host blocked in
// LoadTensor is woken (its load then fails with ErrClosed).
func (g *Graph) drainFIFO() {
	for {
		if _, ok := g.fifo.TryGet(); !ok {
			return
		}
	}
}
