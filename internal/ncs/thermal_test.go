package ncs

import (
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

// aggressiveThermal returns a config that throttles quickly: a hot
// environment, fast thermal response and low thresholds.
func aggressiveThermal() ThermalConfig {
	return ThermalConfig{
		AmbientC:        45,
		ResistanceCPerW: 20,
		TimeConstant:    2 * time.Second,
		Level1C:         60,
		Level2C:         75,
		Level1Factor:    0.5,
		Level2Factor:    0.25,
	}
}

// runInferences drives n sequential inferences on one stick with the
// given config and returns the device plus per-inference spans.
func runInferences(t *testing.T, cfg Config, n int) (*Device, []time.Duration) {
	t.Helper()
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	d := r.devices[0]
	// Swap in the requested config (rig builds with defaults).
	dev, err := NewDevice(r.env, "thermo", d.port, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var spans []time.Duration
	r.env.Process("host", func(p *sim.Proc) {
		if err := dev.Open(p); err != nil {
			t.Error(err)
			return
		}
		g, err := dev.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			start := p.Now()
			if err := g.LoadTensor(p, nil, nil); err != nil {
				t.Error(err)
				return
			}
			if _, err := g.GetResult(p); err != nil {
				t.Error(err)
				return
			}
			spans = append(spans, p.Now()-start)
		}
		if err := dev.Close(p); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	return dev, spans
}

func TestDefaultConfigDoesNotThrottle(t *testing.T) {
	// The paper's sustained runs show no throttling artefacts; the
	// default thermal model must stay below the first threshold.
	dev, spans := runInferences(t, DefaultConfig(), 60)
	stats := dev.ThermalStats()
	if stats.ThrottledInferences != 0 || stats.ThrottleLevel != 0 {
		t.Errorf("default config throttled: %+v", stats)
	}
	if stats.PeakC >= DefaultThermalConfig().Level1C {
		t.Errorf("peak %0.1f C reached the %0.1f C threshold", stats.PeakC, DefaultThermalConfig().Level1C)
	}
	// Temperature must have risen well above ambient under load.
	if stats.TemperatureC < DefaultThermalConfig().AmbientC+5 {
		t.Errorf("temperature %.1f C barely above ambient after 60 inferences", stats.TemperatureC)
	}
	// Latency stays flat (no thermal drift).
	first, last := spans[0], spans[len(spans)-1]
	if ratio := float64(last) / float64(first); ratio > 1.1 {
		t.Errorf("latency drifted %.2fx without throttling", ratio)
	}
}

func TestAggressiveConfigThrottles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thermal = aggressiveThermal()
	dev, spans := runInferences(t, cfg, 60)
	stats := dev.ThermalStats()
	if stats.ThrottledInferences == 0 {
		t.Fatalf("aggressive thermal config never throttled: %+v", stats)
	}
	if stats.PeakC < cfg.Thermal.Level1C {
		t.Errorf("peak %.1f C below threshold yet throttled", stats.PeakC)
	}
	// Throttled inferences take visibly longer than the first (cold)
	// ones: at level 1 the exec stretches by 1/0.5.
	first, last := spans[0], spans[len(spans)-1]
	if float64(last) < 1.3*float64(first) {
		t.Errorf("throttling did not stretch latency: first %v, last %v", first, last)
	}
}

func TestThrottlingReachesLevel2AndStabilizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thermal = aggressiveThermal()
	// Level 2 slows the clock enough that the duty cycle drops and the
	// temperature stabilizes around the threshold region.
	dev, _ := runInferences(t, cfg, 200)
	stats := dev.ThermalStats()
	if stats.PeakC < cfg.Thermal.Level2C {
		t.Skipf("level 2 not reached (peak %.1f C); model stabilized earlier", stats.PeakC)
	}
	// Even at level 2 the stick must not run away thermally: peak
	// bounded by the steady state of continuous max power.
	tss := cfg.Thermal.AmbientC + cfg.Thermal.ResistanceCPerW*cfg.ActiveWatts
	if stats.PeakC > tss+1 {
		t.Errorf("peak %.1f C beyond physical steady state %.1f C", stats.PeakC, tss)
	}
}

func TestThermalCooldown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thermal = aggressiveThermal()
	r := newRig(t, 1, nn.NewGoogLeNet(rng.New(1)))
	dev, err := NewDevice(r.env, "cool", r.devices[0].port, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var hotC, coolC float64
	r.env.Process("host", func(p *sim.Proc) {
		if err := dev.Open(p); err != nil {
			t.Error(err)
			return
		}
		g, err := dev.AllocateGraph(p, r.blob, GraphOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 40; i++ {
			if err := g.LoadTensor(p, nil, nil); err != nil {
				t.Error(err)
				return
			}
			if _, err := g.GetResult(p); err != nil {
				t.Error(err)
				return
			}
		}
		hotC = dev.ThermalStats().TemperatureC
		// Idle for several time constants, then run one inference so
		// the integrator advances.
		p.Sleep(20 * time.Second)
		if err := g.LoadTensor(p, nil, nil); err != nil {
			t.Error(err)
			return
		}
		if _, err := g.GetResult(p); err != nil {
			t.Error(err)
			return
		}
		coolC = dev.ThermalStats().TemperatureC
		if err := dev.Close(p); err != nil {
			t.Error(err)
		}
	})
	r.env.Run()
	if coolC >= hotC-5 {
		t.Errorf("idle cooldown ineffective: %.1f C -> %.1f C", hotC, coolC)
	}
	// Cooldown approaches the idle steady state, not ambient.
	idleSS := cfg.Thermal.AmbientC + cfg.Thermal.ResistanceCPerW*cfg.IdleWatts
	if coolC < cfg.Thermal.AmbientC || coolC > idleSS+15 {
		t.Errorf("cooled temperature %.1f C outside [ambient, idle steady state+margin]", coolC)
	}
}

func TestThermalConfigValidation(t *testing.T) {
	bad := []ThermalConfig{
		{ResistanceCPerW: 0, TimeConstant: time.Second, Level1C: 60, Level2C: 70, Level1Factor: 0.5, Level2Factor: 0.25},
		{ResistanceCPerW: 20, TimeConstant: 0, Level1C: 60, Level2C: 70, Level1Factor: 0.5, Level2Factor: 0.25},
		{ResistanceCPerW: 20, TimeConstant: time.Second, Level1C: 80, Level2C: 70, Level1Factor: 0.5, Level2Factor: 0.25},
		{ResistanceCPerW: 20, TimeConstant: time.Second, Level1C: 60, Level2C: 70, Level1Factor: 0, Level2Factor: 0.25},
		{ResistanceCPerW: 20, TimeConstant: time.Second, Level1C: 60, Level2C: 70, Level1Factor: 0.5, Level2Factor: 0.7},
	}
	env := sim.NewEnv()
	r := newRig(t, 1, nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1)))
	_ = env
	for i, tc := range bad {
		cfg := DefaultConfig()
		cfg.Thermal = tc
		if _, err := NewDevice(r.env, "x", r.devices[0].port, cfg, rng.New(0)); err == nil {
			t.Errorf("thermal config %d accepted", i)
		}
	}
}

func TestThermalStatsZeroValue(t *testing.T) {
	var d Device
	if s := d.ThermalStats(); s != (ThermalStats{}) {
		t.Errorf("nil thermal state should give zero stats, got %+v", s)
	}
}
