package repro

import (
	"testing"
	"time"
)

// hedgedRun drives the facade end to end: four sticks under Poisson
// load with a mid-run straggler slowdown, hedging per hc.
func hedgedRun(t *testing.T, hc HedgeConfig) *Report {
	t.Helper()
	plan := FaultPlan{Events: []FaultEvent{
		{Device: "ncs2", Kind: Slowdown, At: 5 * time.Second, Factor: 10, Duration: 3 * time.Second},
	}}
	sess, err := NewSession(
		WithImages(100),
		WithVPUs(4),
		WithArrivals(DelayedArrivals(PoissonArrivals(28), 4500*time.Millisecond)),
		WithSLO(500*time.Millisecond),
		WithFaults(plan),
		WithRecovery(DefaultRecoveryConfig()),
		WithHedging(hc),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestHedgingAcceptance: the public facade arms hedging, duplicates
// launch against the straggler, every item is delivered exactly once,
// and the report carries the hedge accounting.
func TestHedgingAcceptance(t *testing.T) {
	rep := hedgedRun(t, HedgeConfig{Trigger: 300 * time.Millisecond})
	if rep.Images != 100 {
		t.Errorf("Images = %d, want 100 (first-completion dedup must hold)", rep.Images)
	}
	if rep.Hedged == 0 {
		t.Fatal("no hedges launched against a 10x straggler")
	}
	if rep.HedgeWins == 0 {
		t.Error("no hedge wins recorded")
	}
	if rep.HedgeWasteRate < 0 || rep.HedgeWasteRate > 1 {
		t.Errorf("HedgeWasteRate = %v out of [0,1]", rep.HedgeWasteRate)
	}
}

// TestHedgingTriggerInfinityIsControl: HedgeNever reproduces the
// unhedged run byte for byte — the facade-level control guarantee the
// bench experiment relies on.
func TestHedgingTriggerInfinityIsControl(t *testing.T) {
	off := hedgedRun(t, HedgeConfig{})
	inf := hedgedRun(t, HedgeConfig{Trigger: HedgeNever})
	if off.String() != inf.String() {
		t.Errorf("trigger=∞ diverges from unhedged:\n--- off ---\n%s--- inf ---\n%s", off, inf)
	}
}

// TestHedgingDeterministic: an identical hedged, faulted session
// replays byte for byte.
func TestHedgingDeterministic(t *testing.T) {
	a := hedgedRun(t, HedgeConfig{Trigger: 300 * time.Millisecond})
	b := hedgedRun(t, HedgeConfig{Trigger: 300 * time.Millisecond})
	if a.String() != b.String() {
		t.Errorf("hedged session not reproducible:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}
