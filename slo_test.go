package repro

import (
	"reflect"
	"testing"

	"repro/internal/bench"
)

// sloTestConfig shrinks the slo experiment to test scale.
func sloTestConfig() bench.Config {
	return bench.Config{
		ImagesPerSubset:           150,
		Subsets:                   5,
		FunctionalImagesPerSubset: 1,
		Seed:                      1,
	}
}

func sloTestPoints(t *testing.T) []SLOPoint {
	t.Helper()
	h, err := bench.NewHarness(sloTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	points, err := h.SLOPoints()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// TestSLOAcceptance is the issue's acceptance scenario: for at least
// one device group, adaptive batching must beat fixed-batch p99 at
// equal offered load below the knee, and bounded admission must hold
// goodput above the unbounded configuration past the knee.
func TestSLOAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full slo experiment run skipped in -short mode (race job); the test job runs it")
	}
	points := sloTestPoints(t)

	type cell struct{ p99, goodput float64 }
	fixedOpen := map[string]cell{}    // below-knee (lightest load) fixed/open
	adaptiveOpen := map[string]cell{} // below-knee adaptive/open
	openTop := map[string]cell{}      // past-knee (heaviest load) open
	boundedTop := map[string]cell{}   // past-knee bounded
	const lo, hi = 0.5, 1.3
	for _, p := range points {
		c := cell{p99: p.P99MS, goodput: p.GoodputPct}
		switch {
		case p.LoadFraction == lo && p.Batching == "fixed" && p.Admission == "open":
			fixedOpen[p.Device] = c
		case p.LoadFraction == lo && p.Batching == "adaptive" && p.Admission == "open":
			adaptiveOpen[p.Device] = c
		case p.LoadFraction == hi && p.Admission == "open" && p.Batching != "fixed":
			openTop[p.Device] = c
		case p.LoadFraction == hi && p.Admission == "bounded":
			boundedTop[p.Device] = c
		}
	}

	adaptiveWins, boundedWins := 0, 0
	for dev, f := range fixedOpen {
		a, ok := adaptiveOpen[dev]
		if !ok {
			t.Errorf("%s: no adaptive/open point at %.0f%% load", dev, lo*100)
			continue
		}
		if a.p99 < f.p99 {
			adaptiveWins++
		} else {
			t.Logf("%s: adaptive p99 %.1fms vs fixed %.1fms below the knee", dev, a.p99, f.p99)
		}
	}
	for dev, o := range openTop {
		b, ok := boundedTop[dev]
		if !ok {
			t.Errorf("%s: no bounded point at %.0f%% load", dev, hi*100)
			continue
		}
		if b.goodput > o.goodput {
			boundedWins++
		} else {
			t.Logf("%s: bounded goodput %.1f%% vs open %.1f%% past the knee", dev, b.goodput, o.goodput)
		}
	}
	if adaptiveWins == 0 {
		t.Error("no device group shows adaptive batching beating fixed-batch p99 below the knee")
	}
	if boundedWins == 0 {
		t.Error("no device group shows bounded admission holding goodput above unbounded past the knee")
	}
}

// TestSLOPointsDeterminism: two slo experiment runs from identically
// configured harnesses agree bit for bit — the property the CI
// determinism job guards on the emitted JSON. Skipped under -short
// (the race job): the double experiment run is the costliest test in
// the package and the bench-smoke job checks the same property on
// the real emission path.
func TestSLOPointsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double experiment run skipped in -short mode")
	}
	a := sloTestPoints(t)
	b := sloTestPoints(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("slo points differ between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}
