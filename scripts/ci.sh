#!/usr/bin/env sh
# CI gate: formatting, vet, build, tests. Run from the repo root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...
