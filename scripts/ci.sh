#!/usr/bin/env sh
# CI gate: formatting, vet, build, tests. Run from the repo root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== godoc gate (internal/fault, internal/core) =="
# Every exported symbol of the fault-injection and serving-core
# packages must carry a doc comment: top-level types/funcs/consts/vars,
# members of const/var/type blocks, and methods on exported types.
# The reliability surface (recovery, admission, hedging) is public API
# for downstream serving code — an undocumented knob is a review bug.
godoc_files=$(find internal/fault internal/core -name '*.go' ! -name '*_test.go')
undocumented=$(awk '
FNR == 1 { prev = ""; inblock = 0 }
/^(const|var|type) \($/ { inblock = 1; prev = ""; next }
inblock && /^\)/ { inblock = 0; prev = ""; next }
inblock && /^\t[A-Z][A-Za-z0-9_]*( |,|$)/ {
	if (prev !~ /^\t\/\//) print FILENAME ":" FNR ": " $0
	prev = $0; next
}
/^(type|func|const|var) [A-Z]/ || /^func \([A-Za-z_]+ \*?[A-Z][A-Za-z0-9_]*(\[[^]]*\])?\) [A-Z]/ {
	if (prev !~ /^\/\//) print FILENAME ":" FNR ": " $0
}
{ prev = $0 }
' $godoc_files)
if [ -n "$undocumented" ]; then
	echo "undocumented exported symbols:"
	echo "$undocumented"
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...
