#!/usr/bin/env sh
# CI gate: formatting, vet, build, tests. Run from the repo root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== ncsw-vet (determinism & API hygiene) =="
# The domain analyzer suite (internal/lint, DESIGN.md §8): walltime,
# seededrand and maprange guard the bit-for-bit reproducibility claim
# at review time; exportdoc replaces the old awk godoc gate and covers
# every internal/ package (the reliability and serving surfaces are
# API for downstream code — an undocumented knob is a review bug);
# resultstamp keeps the PR 2 lifecycle timestamps intact.
go run ./cmd/ncsw-vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== bench-kernel smoke (-benchtime=1x: compile+run sanity, not timing) =="
# The kernel microbenchmarks (DESIGN.md §9) are the repo's only
# wall-clock numbers, so CI never gates on their timings — it only
# proves every workload still compiles and completes one iteration.
go test -run '^$' -bench BenchmarkKernel -benchtime=1x ./internal/sim
