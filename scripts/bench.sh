#!/usr/bin/env sh
# Regenerate the paper's evaluation benchmarks at CI scale into
# .bench/ (one benchmark per figure; see bench_test.go), run the
# simulation-kernel microbenchmarks into .bench/kernel.txt, then emit
# the machine-readable perf snapshot BENCH_PR<n>.json from the
# scenario corpus replay. <n> is the newest PR recorded in CHANGES.md, so
# each PR's run lands in its own snapshot without editing this script;
# a CHANGES.md with no PR entry is an error (the alternative is a
# malformed snapshot name like BENCH_PR.json silently shadowing the
# real history).
#
# Overrides: NCSW_BENCH_TIME (benchmark measuring window),
# NCSW_BENCH_OUT (text output), NCSW_BENCH_KERNEL_OUT (kernel
# microbench text output), NCSW_BENCH_JSON (snapshot path),
# NCSW_BENCH_JSON_FLAGS (ncsw-bench flags producing the snapshot).
set -eu

cd "$(dirname "$0")/.."

if [ -z "${NCSW_BENCH_JSON:-}" ]; then
	pr=$(sed -n 's/^- PR \([0-9][0-9]*\).*/\1/p' CHANGES.md | sort -n | tail -1)
	if [ -z "$pr" ]; then
		echo "bench.sh: no 'PR <n>' entry in CHANGES.md — cannot name the snapshot." >&2
		echo "bench.sh: add a line like '- PR 5 (...): ...' or set NCSW_BENCH_JSON explicitly." >&2
		exit 1
	fi
	NCSW_BENCH_JSON="BENCH_PR${pr}.json"
fi
OUT_FILE=${NCSW_BENCH_OUT:-.bench/figures.txt}
KERNEL_OUT=${NCSW_BENCH_KERNEL_OUT:-.bench/kernel.txt}
BENCH_TIME=${NCSW_BENCH_TIME:-200ms}
JSON_FLAGS=${NCSW_BENCH_JSON_FLAGS:--scenario scenarios/ -json}

mkdir -p "$(dirname "$OUT_FILE")"
mkdir -p "$(dirname "$KERNEL_OUT")"

go test . \
	-run '^$' \
	-bench . \
	-benchtime "$BENCH_TIME" | tee "$OUT_FILE"

echo "== kernel microbenchmarks -> $KERNEL_OUT =="
go test ./internal/sim \
	-run '^$' \
	-bench BenchmarkKernel \
	-benchmem \
	-benchtime "$BENCH_TIME" | tee "$KERNEL_OUT"

echo "== perf snapshot ($JSON_FLAGS) -> $NCSW_BENCH_JSON =="
# shellcheck disable=SC2086 # JSON_FLAGS is a flag list by contract
go run ./cmd/ncsw-bench $JSON_FLAGS > "$NCSW_BENCH_JSON"
