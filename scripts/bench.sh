#!/usr/bin/env sh
# Regenerate the paper's evaluation benchmarks at CI scale into
# .bench/ (one benchmark per figure; see bench_test.go). Override the
# measuring window with NCSW_BENCH_TIME, the output file with
# NCSW_BENCH_OUT.
set -eu

OUT_FILE=${NCSW_BENCH_OUT:-.bench/figures.txt}
BENCH_TIME=${NCSW_BENCH_TIME:-200ms}

mkdir -p "$(dirname "$OUT_FILE")"

go test . \
	-run '^$' \
	-bench . \
	-benchtime "$BENCH_TIME" | tee "$OUT_FILE"
