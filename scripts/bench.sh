#!/usr/bin/env sh
# Regenerate the paper's evaluation benchmarks at CI scale into
# .bench/ (one benchmark per figure; see bench_test.go), then emit the
# machine-readable perf snapshot BENCH_PR2.json (per device group:
# achieved img/s and tail latency per offered load) from the serving
# experiment. Override the measuring window with NCSW_BENCH_TIME, the
# text output with NCSW_BENCH_OUT, the JSON output with
# NCSW_BENCH_JSON.
set -eu

OUT_FILE=${NCSW_BENCH_OUT:-.bench/figures.txt}
JSON_FILE=${NCSW_BENCH_JSON:-BENCH_PR2.json}
BENCH_TIME=${NCSW_BENCH_TIME:-200ms}

mkdir -p "$(dirname "$OUT_FILE")"

go test . \
	-run '^$' \
	-bench . \
	-benchtime "$BENCH_TIME" | tee "$OUT_FILE"

echo "== serving points -> $JSON_FILE =="
go run ./cmd/ncsw-bench -serve -json > "$JSON_FILE"
