// Quickstart: the paper's workflow through the declarative session
// API — one simulated Neural Compute Stick classifies five synthetic
// validation images with real FP16 inference. The session owns what
// Listing 1 hand-wires: dataset synthesis, network construction and
// calibration, graph compilation (mvNCCompile), USB testbed assembly,
// device open/allocate, and result collection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println(repro.About())

	sess, err := repro.NewSession(
		repro.WithVPUs(1),
		repro.WithFunctional(true),
		repro.WithImages(5),
		repro.WithRetain(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	ds := sess.Dataset()
	for _, r := range report.Results {
		verdict := "MISS"
		if r.Pred == r.Label {
			verdict = "HIT"
		}
		fmt.Printf("image %d: predicted %q (class %d, conf %.3f) — truth %q [%s] in %v\n",
			r.Index, ds.Synset(r.Pred).Name, r.Pred, r.Confidence,
			ds.Synset(r.Label).Name, verdict, r.End-r.Start)
	}
	fmt.Println()
	fmt.Print(report)
}
