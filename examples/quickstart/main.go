// Quickstart: the Listing-1 workflow of the paper on one simulated
// Neural Compute Stick — open the device, allocate a compiled graph,
// load a tensor (non-blocking), overlap host work while the VPU runs,
// and retrieve the classification result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println(repro.About())

	// Build the network and its synthetic validation data, install the
	// prototype classifier (the stand-in for pre-trained weights), and
	// compile the NCS graph blob — the mvNCCompile step.
	net := repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(42))
	ds, err := repro.NewDataset(repro.DefaultDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.CalibratePrototypeClassifier(net, ds, repro.DefaultClassifierTemperature); err != nil {
		log.Fatal(err)
	}
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	// One simulated NCS on a motherboard USB port.
	env := repro.NewEnv()
	devices, err := repro.NewNCSTestbed(env, 1, repro.Seed(1))
	if err != nil {
		log.Fatal(err)
	}
	dev := devices[0]

	env.Process("host", func(p *repro.Proc) {
		if err := dev.Open(p); err != nil { // loads firmware, boots the RTOS
			log.Fatal(err)
		}
		graph, err := dev.AllocateGraph(p, blob, repro.GraphOptions{Functional: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %s ready at t=%v (graph: %d layers, %d bytes)\n",
			dev.Name(), p.Now(), graph.Info().Layers, graph.Info().Bytes)

		for i := 0; i < 5; i++ {
			img := ds.Preprocessed(i)

			// Load the graph with the input image (mvncLoadTensor):
			// returns as soon as the transfer completes and execution
			// is queued on the SHAVE processors.
			loaded := p.Now()
			if err := graph.LoadTensor(p, img, i); err != nil {
				log.Fatal(err)
			}

			// *** Perform other overlapping computations here *** —
			// e.g. decode the next frame. We just note the free time.
			free := p.Now()

			// Retrieve the inference result (mvncGetResult): blocks
			// until the VPU finishes.
			res, err := graph.GetResult(p)
			if err != nil {
				log.Fatal(err)
			}
			pred, conf := res.Output.ArgMax()
			verdict := "MISS"
			if pred == ds.Label(i) {
				verdict = "HIT"
			}
			fmt.Printf("image %d: predicted %q (class %d, conf %.3f) — truth %q [%s]\n",
				i, ds.Synset(pred).Name, pred, conf, ds.Synset(ds.Label(i)).Name, verdict)
			fmt.Printf("         load %v, host free %v while VPU executed %v\n",
				free-loaded, res.ExecTime, res.ExecTime)
		}
		if err := dev.Close(p); err != nil {
			log.Fatal(err)
		}
	})
	env.Run()
	fmt.Printf("total simulated time: %v\n", env.Now())
}
