// Precision: the Fig. 7 experiment in miniature — the same images
// classified by the FP32 network (the CPU path) and by the FP16
// network reconstructed from the compiled NCS graph file (the VPU
// path), comparing top-1 agreement and per-image confidence
// differences, plus the FP16-accumulate ablation.
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const images = 300

func main() {
	log.SetFlags(0)

	net32 := repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(42))
	ds, err := repro.NewDataset(repro.DefaultDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.CalibratePrototypeClassifier(net32, ds, repro.DefaultClassifierTemperature); err != nil {
		log.Fatal(err)
	}
	// The graph-file round trip is exactly what the NCS does to the
	// weights: FP32 -> binary16 -> FP32-exact halves.
	blob, err := repro.CompileGraph(net32)
	if err != nil {
		log.Fatal(err)
	}
	net16, err := repro.ParseGraph(blob)
	if err != nil {
		log.Fatal(err)
	}

	var wrong32, wrong16, wrongStrict, agree int
	var confDiff, maxDiff float64
	var filtered int
	for i := 0; i < images; i++ {
		in := ds.Preprocessed(i).Reshape(1, 3, 32, 32)
		out32, err := net32.Forward(in, repro.FP32)
		if err != nil {
			log.Fatal(err)
		}
		out16, err := net16.Forward(in, repro.FP16)
		if err != nil {
			log.Fatal(err)
		}
		outS, err := net16.Forward(in, repro.FP16Strict)
		if err != nil {
			log.Fatal(err)
		}
		label := ds.Label(i)
		p32, c32 := out32.ArgMax()
		p16, c16 := out16.ArgMax()
		pS, _ := outS.ArgMax()
		if p32 != label {
			wrong32++
		}
		if p16 != label {
			wrong16++
		}
		if pS != label {
			wrongStrict++
		}
		if p32 == p16 {
			agree++
		}
		if p32 == label && p16 == label {
			d := math.Abs(float64(c32) - float64(c16))
			confDiff += d
			if d > maxDiff {
				maxDiff = d
			}
			filtered++
		}
	}

	pct := func(n int) float64 { return float64(n) / images * 100 }
	fmt.Printf("FP32 vs FP16 on %d synthetic validation images (paper Fig. 7):\n\n", images)
	fmt.Printf("top-1 error FP32 (CPU path):        %.2f%%\n", pct(wrong32))
	fmt.Printf("top-1 error FP16 (VPU path):        %.2f%%   (paper: 0.09%% apart)\n", pct(wrong16))
	fmt.Printf("top-1 error FP16-accumulate:        %.2f%%   (ablation: native FP16 MAC)\n", pct(wrongStrict))
	fmt.Printf("prediction agreement FP32 vs FP16:  %.2f%%\n", pct(agree))
	fmt.Printf("mean |confidence diff| (filtered):  %.2e  (paper: 4.4e-3)\n", confDiff/float64(filtered))
	fmt.Printf("max  |confidence diff| (filtered):  %.2e\n", maxDiff)
	fmt.Printf("\nthe FP16 weights in the graph file are exactly representable halves;\n")
	fmt.Printf("all divergence above is genuine binary16 rounding, not injected noise\n")
}
