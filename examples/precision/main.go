// Precision: the Fig. 7 experiment in miniature — the same images
// classified by two functional sessions, one on the CPU path (FP32
// Caffe batch engine) and one on the VPU path (FP16 inference from
// the compiled NCS graph file), comparing top-1 error and per-image
// confidence differences, plus the FP16-accumulate ablation.
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strconv"

	"repro"
)

var images = imagesFromEnv(300)

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	log.SetFlags(0)

	// Two sessions over the same dataset and network seeds: the only
	// difference between them is the device path, exactly the paper's
	// CPU-vs-VPU comparison.
	cpuResults, _ := run(repro.WithCPU(8))
	vpuResults, sess := run(repro.WithVPUs(1))
	ds := sess.Dataset()

	var wrong32, wrong16, wrongStrict, agree int
	var confDiff, maxDiff float64
	var filtered int

	// The FP16-accumulate ablation reuses the session's compiled blob:
	// the graph-file round trip is exactly what the NCS does to the
	// weights (FP32 -> binary16 -> FP32-exact halves).
	net16, err := repro.ParseGraph(sess.Blob())
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < images; i++ {
		r32, r16 := cpuResults[i], vpuResults[i]
		label := ds.Label(i)
		if r32.Pred != label {
			wrong32++
		}
		if r16.Pred != label {
			wrong16++
		}
		if r32.Pred == r16.Pred {
			agree++
		}
		if r32.Pred == label && r16.Pred == label {
			d := math.Abs(float64(r32.Confidence) - float64(r16.Confidence))
			confDiff += d
			if d > maxDiff {
				maxDiff = d
			}
			filtered++
		}

		in := ds.Preprocessed(i).Reshape(1, 3, 32, 32)
		outS, err := net16.Forward(in, repro.FP16Strict)
		if err != nil {
			log.Fatal(err)
		}
		if pS, _ := outS.ArgMax(); pS != label {
			wrongStrict++
		}
	}

	pct := func(n int) float64 { return float64(n) / float64(images) * 100 }
	fmt.Printf("FP32 vs FP16 on %d synthetic validation images (paper Fig. 7):\n\n", images)
	fmt.Printf("top-1 error FP32 (CPU path):        %.2f%%\n", pct(wrong32))
	fmt.Printf("top-1 error FP16 (VPU path):        %.2f%%   (paper: 0.09%% apart)\n", pct(wrong16))
	fmt.Printf("top-1 error FP16-accumulate:        %.2f%%   (ablation: native FP16 MAC)\n", pct(wrongStrict))
	fmt.Printf("prediction agreement FP32 vs FP16:  %.2f%%\n", pct(agree))
	fmt.Printf("mean |confidence diff| (filtered):  %.2e  (paper: 4.4e-3)\n", confDiff/float64(filtered))
	fmt.Printf("max  |confidence diff| (filtered):  %.2e\n", maxDiff)
	fmt.Printf("\nthe FP16 weights in the graph file are exactly representable halves;\n")
	fmt.Printf("all divergence above is genuine binary16 rounding, not injected noise\n")
}

// run executes one functional session over the shared image range and
// returns its results indexed by image.
func run(group repro.SessionOption) (map[int]repro.Result, *repro.Session) {
	sess, err := repro.NewSession(
		group,
		repro.WithImages(images),
		repro.WithFunctional(true),
		repro.WithRetain(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	byIndex := make(map[int]repro.Result, len(report.Results))
	for _, r := range report.Results {
		byIndex[r.Index] = r
	}
	return byIndex, sess
}
