// Serving: the session as an inference service under open-loop
// traffic — Poisson arrivals offered to a heterogeneous CPU + 4-VPU
// group with latency-aware routing, the serving-mode counterpart of
// the paper's drain-the-dataset throughput runs. The report's latency
// block shows what throughput numbers hide: per-group p50/p95/p99,
// and how much of each item's latency was queueing vs device time.
// Arrivals are delayed past the sticks' firmware boot so the numbers
// are steady-state serving, not start-up backlog.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
)

const defaultImages = 400

// warmup skips the VPU firmware boot (~1.7 s simulated) so offered
// load meets a ready service.
const warmup = 2 * time.Second

func main() {
	log.SetFlags(0)
	images := imagesFromEnv(defaultImages)

	// One network and one compiled blob, shared by every session.
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	// ~83 img/s combined capacity (CPU batch-8 ≈ 44, 4 VPUs ≈ 39):
	// 40/s is comfortable, 90/s is past the knee.
	for _, rate := range []float64{40, 90} {
		sess, err := repro.NewSession(
			repro.WithImages(images),
			repro.WithCPU(8),
			repro.WithVPUs(4),
			repro.WithNetwork(net),
			repro.WithBlob(blob),
			repro.WithArrivals(repro.DelayedArrivals(repro.PoissonArrivals(rate), warmup)),
			repro.WithRouting(repro.RouteLatency),
		)
		if err != nil {
			log.Fatal(err)
		}
		report, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── offered load %.0f img/s (Poisson) over %d requests ──\n%s\n",
			rate, images, report)
	}
	fmt.Println("routing is latency-ewma: each request goes to the group expected")
	fmt.Println("to finish it soonest (EWMA service time x queued items)")
}

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
