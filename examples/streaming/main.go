// Streaming: §III's heterogeneous device groups — an MPI-style stream
// source produced by a simulated rank fans out to two device groups
// running concurrently in the same session: a CPU batch engine and a
// 2-stick VPU group. Work-stealing routing means whichever group is
// free takes the next frame — "different sources can be easily
// connected to the same or multiple targets."
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
)

const frameInterval = 25 * time.Millisecond

var streamed = imagesFromEnv(240)

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	log.SetFlags(0)

	sess, err := repro.NewSession(
		repro.WithCPU(4),
		repro.WithVPUs(2),
		repro.WithFunctional(true),
		repro.WithStream(16),
		repro.WithRouting(repro.WorkStealing),
		repro.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The producing "MPI rank": one preprocessed frame every 25 ms of
	// simulated time into the session's bounded stream. The stream
	// outlives the VPU group's setup (two firmware boots, ~1.7 s), so
	// both groups compete for frames once the sticks come online.
	ds := sess.Dataset()
	stream := sess.Stream()
	sess.Env().Process("mpi-rank0", func(p *repro.Proc) {
		for i := 0; i < streamed; i++ {
			p.Sleep(frameInterval)
			stream.Push(p, repro.Item{Index: i, Image: ds.Preprocessed(i), Label: ds.Label(i)})
		}
		stream.Close(p)
	})

	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d frames at %v intervals into two device groups:\n\n", streamed, frameInterval)
	fmt.Printf("%-14s %-8s %-11s %-10s\n", "group", "frames", "top-1 err", "mean conf")
	for _, tr := range report.Targets {
		fmt.Printf("%-14s %-8d %-11s %-10.3f\n", tr.Name, tr.Images,
			fmt.Sprintf("%.2f%%", tr.TopOneError*100), tr.MeanConfidence)
	}
	fmt.Printf("\ntotal frames processed: %d (every frame exactly once)\n", report.Images)
	fmt.Printf("simulated wall time: %v\n", report.SimTime)
}
