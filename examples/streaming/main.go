// Streaming: §III's heterogeneous device groups — an MPI-style stream
// source produced by a simulated rank fans out to two target groups
// running concurrently in the same environment: a CPU batch engine and
// a 2-stick VPU group. "Different sources can be easily connected to
// the same or multiple targets."
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	streamed      = 240
	frameInterval = 25 * time.Millisecond
)

func main() {
	log.SetFlags(0)

	net := repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(42))
	ds, err := repro.NewDataset(repro.DefaultDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.CalibratePrototypeClassifier(net, ds, repro.DefaultClassifierTemperature); err != nil {
		log.Fatal(err)
	}
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	env := repro.NewEnv()

	// The producing "MPI rank": pushes one preprocessed frame every
	// 25 ms of simulated time into a bounded stream. The stream
	// outlives the VPU group's setup (two firmware boots, ~1.7 s), so
	// both groups compete for frames once the sticks come online.
	stream := repro.NewStreamSource(env, 16)
	env.Process("mpi-rank0", func(p *repro.Proc) {
		for i := 0; i < streamed; i++ {
			p.Sleep(frameInterval)
			stream.Push(p, repro.Item{Index: i, Image: ds.Preprocessed(i), Label: ds.Label(i)})
		}
		stream.Close(p)
	})

	// Group 1: the CPU engine pulls from the shared stream.
	cpu, err := repro.NewCPUTarget(net, 4, true, repro.Seed(3))
	if err != nil {
		log.Fatal(err)
	}
	cpuCol := repro.NewCollector(false)
	cpuJob := cpu.Start(env, stream, cpuCol.Sink())

	// Group 2: two NCS sticks pull from the same stream — whoever is
	// free takes the next frame.
	sticks, err := repro.NewNCSTestbed(env, 2, repro.Seed(3))
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.DefaultVPUOptions()
	opts.Functional = true
	vpu, err := repro.NewVPUTarget(sticks, blob, opts)
	if err != nil {
		log.Fatal(err)
	}
	vpuCol := repro.NewCollector(false)
	vpuJob := vpu.Start(env, stream, vpuCol.Sink())

	env.Run()
	if cpuJob.Err != nil || vpuJob.Err != nil {
		log.Fatal(cpuJob.Err, vpuJob.Err)
	}

	fmt.Printf("streamed %d frames at %v intervals into two device groups:\n\n", streamed, frameInterval)
	fmt.Printf("%-14s %-8s %-11s %-10s\n", "group", "frames", "top-1 err", "mean conf")
	fmt.Printf("%-14s %-8d %-11s %-10.3f\n", "cpu", cpuJob.Images,
		fmt.Sprintf("%.2f%%", cpuCol.TopOneError()*100), cpuCol.MeanConfidence())
	fmt.Printf("%-14s %-8d %-11s %-10.3f\n", vpu.Name(), vpuJob.Images,
		fmt.Sprintf("%.2f%%", vpuCol.TopOneError()*100), vpuCol.MeanConfidence())
	fmt.Printf("\ntotal frames processed: %d (every frame exactly once)\n", cpuJob.Images+vpuJob.Images)
	fmt.Printf("simulated wall time: %v\n", env.Now())
}
