// Split inference: the GoogLeNet workload partitioned at a layer
// boundary across heterogeneous devices — a 4-stick VPU head runs the
// early layers, a batch GPU tail runs the rest, and intermediate
// activations stream between them under a bounded in-flight window
// with backpressure end to end.
//
// Dealing whole inferences across a mixed fleet (a Pool) leaves every
// device paying the full network; a pipeline instead gives each
// device the segment it is relatively best at, so the fleet's
// throughput approaches min(head rate, tail rate) over smaller
// per-device workloads. The example runs the best measured partition
// (after pool2/3x3_s2) against the whole-inference GPU baseline and
// the dealt pool at the same fleet, then shows two degenerate cuts
// (0 and the layer count) collapsing back to the classic
// single-group sessions bit for bit.
//
//	go run ./examples/split
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro"
)

const defaultImages = 400

// headWindow is the boundary in-flight bound between head and tail:
// two GPU batches, so one batch assembles while the previous one
// executes (a window under the tail's batch size would serialize
// assembly against the head).
const headWindow = 64

// gpuBatch is the tail's batch size, the GPU's throughput sweet spot.
const gpuBatch = 32

func main() {
	log.SetFlags(0)
	images := imagesFromEnv(defaultImages)

	net := repro.NewGoogLeNet(repro.Seed(42))
	cuts := net.ValidCuts()
	// The best measured partition point at quick scale sits after the
	// pool2/3x3_s2 stem (see the -split bench experiment); fall back
	// to the middle cut if the layer list ever changes.
	cut := cuts[len(cuts)/2]
	for _, c := range cuts {
		if names := net.LayerNames(); names[c-1] == "pool2/3x3_s2" {
			cut = c
		}
	}

	run := func(label string, opts ...repro.SessionOption) *repro.Report {
		sess, err := repro.NewSession(append([]repro.SessionOption{
			repro.WithImages(images),
		}, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		report, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── %s ──\n%s\n", label, report)
		return report
	}

	head := repro.VPUStage(4)
	head.Queue = headWindow

	run("whole inference on the GPU (best single device)",
		repro.WithGPU(gpuBatch))
	run("whole inferences dealt across 4 VPUs + GPU (pool)",
		repro.WithVPUs(4), repro.WithGPU(gpuBatch))
	run(fmt.Sprintf("split inference: 4-VPU head + GPU tail, cut@%d", cut),
		repro.WithStages(head, repro.GPUStage(gpuBatch)),
		repro.WithCut(cut))

	// Degenerate cuts collapse before any device is built: cut at the
	// layer count leaves the tail empty (a plain 4-stick session), cut
	// at 0 leaves the head empty (a plain GPU session).
	whole := run("degenerate cut at the layer count (pure 4-VPU session)",
		repro.WithStages(head, repro.GPUStage(gpuBatch)),
		repro.WithCut(net.Len()))
	classic := run("classic 4-VPU session (must match the degenerate cut exactly)",
		repro.WithVPUs(4))
	if whole.String() != classic.String() {
		log.Fatal("degenerate cut diverged from the classic session")
	}
	fmt.Println("the degenerate-cut report matches the classic session byte for byte:")
	fmt.Println("splitting is free until a cut actually moves layers between devices")
}

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
