// Multi-VPU: the paper's parallel NCSw pipeline (Fig. 4) — one host
// worker per Neural Compute Stick, round-robin dispatch, and the
// near-ideal scaling of Fig. 6b. Runs GoogLeNet inference (the
// performance workload) on 1, 2, 4 and 8 simulated sticks and prints
// the scaling table plus a steady-state timeline.
//
//	go run ./examples/multivpu
package main

import (
	"fmt"
	"log"

	"repro"
)

const imagesPerRun = 200

func main() {
	log.SetFlags(0)

	net := repro.NewGoogLeNet(repro.Seed(1))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultDatasetConfig()
	cfg.Images = imagesPerRun
	ds, err := repro.NewDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GoogLeNet inference on the simulated NCS testbed (Fig. 5 topology)")
	fmt.Printf("%-8s %-14s %-14s %-10s\n", "sticks", "img/s", "ms/img", "scaling")
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		ips := run(n, blob, ds, nil)
		if n == 1 {
			base = ips
		}
		fmt.Printf("%-8d %-14.1f %-14.1f %.2fx\n", n, ips, 1000/ips, ips/base)
	}

	// One more 4-stick run with tracing to show the Fig. 4 overlap.
	tl := repro.NewTimeline()
	run(4, blob, ds, tl)
	fmt.Println("\nsteady-state pipeline on 4 sticks (Fig. 4): L=load #=exec R=read")
	fmt.Print(tl.Render(96))
}

// run executes imagesPerRun inferences on n sticks and returns the
// steady-state throughput.
func run(n int, blob []byte, ds *repro.Dataset, tl *repro.Timeline) float64 {
	env := repro.NewEnv()
	sticks, err := repro.NewNCSTestbed(env, n, repro.Seed(7))
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.DefaultVPUOptions()
	target, err := repro.NewVPUTarget(sticks, blob, opts)
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.NewDatasetSource(ds, 0, imagesPerRun, false)
	if err != nil {
		log.Fatal(err)
	}
	col := repro.NewCollector(false)

	// Tracing needs the timeline attached before Start.
	if tl != nil {
		opts.Timeline = tl
		target, err = repro.NewVPUTarget(sticks, blob, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		log.Fatal(job.Err)
	}
	if tl != nil {
		*tl = *tl.After(job.ReadyAt)
	}
	return job.Throughput()
}
