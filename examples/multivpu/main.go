// Multi-VPU: the paper's parallel NCSw pipeline (Fig. 4) — one host
// worker per Neural Compute Stick, round-robin dispatch, and the
// near-ideal scaling of Fig. 6b. Each stick count is one
// single-group session; the session layer adds no timing overhead
// over the hand-wired target, so the scaling table matches the
// paper's.
//
//	go run ./examples/multivpu
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro"
)

var imagesPerRun = imagesFromEnv(200)

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	log.SetFlags(0)

	// One network and one compiled blob, shared by every session.
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GoogLeNet inference on the simulated NCS testbed (Fig. 5 topology)")
	fmt.Printf("%-8s %-14s %-14s %-10s\n", "sticks", "img/s", "ms/img", "scaling")
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		ips := run(n, net, blob, nil)
		if n == 1 {
			base = ips
		}
		fmt.Printf("%-8d %-14.1f %-14.1f %.2fx\n", n, ips, 1000/ips, ips/base)
	}

	// One more 4-stick run with tracing to show the Fig. 4 overlap.
	tl := repro.NewTimeline()
	run(4, net, blob, tl)
	fmt.Println("\nsteady-state pipeline on 4 sticks (Fig. 4): L=load #=exec R=read")
	fmt.Print(tl.Render(96))
}

// run executes imagesPerRun inferences on n sticks and returns the
// steady-state throughput.
func run(n int, net *repro.Graph, blob []byte, tl *repro.Timeline) float64 {
	sess, err := repro.NewSession(
		repro.WithImages(imagesPerRun),
		repro.WithVPUs(n),
		repro.WithNetwork(net),
		repro.WithBlob(blob),
		repro.WithSeed(7),
		repro.WithTimeline(tl),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	if tl != nil {
		*tl = *tl.After(report.Job.ReadyAt)
	}
	return report.Throughput
}
