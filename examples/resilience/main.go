// Resilience: the same serving session run through the same bad day
// at the rack — a stick firmware hang, then a USB link drop — with
// and without the self-healing pipeline.
//
// The fault plan is deterministic (internal/fault): both runs face the
// identical Poisson arrivals and the identical failure instants, so
// the goodput gap is attributable to recovery alone. Without recovery
// the failed sticks are abandoned (fail-stop): the survivors slip past
// their knee and goodput collapses. With recovery each outage costs
// the detection timeout plus a real reboot — reset, firmware
// re-upload, RTOS boot, graph re-allocation — in-flight items are
// redelivered within a retry budget, and the report's availability
// metrics (outages, MTTR, retries, fault drops, uptime) tell the
// story.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
)

const defaultImages = 600

// warmup skips the sequential 4-stick setup (~4.2 s simulated) so the
// faults land mid-steady-state.
const warmup = 5 * time.Second

// slo is the per-request deadline: arrival to completion.
const slo = 450 * time.Millisecond

func main() {
	log.SetFlags(0)
	images := imagesFromEnv(defaultImages)

	// One network and one compiled blob, shared by both sessions.
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	// The scenario: ncs1's firmware wedges early on; ncs2's USB link
	// drops a little later. Scripted in virtual time, so it replays
	// bit-for-bit.
	plan := repro.FaultPlan{Events: []repro.FaultEvent{
		{Device: "ncs1", Kind: repro.StickHang, At: warmup + 2*time.Second},
		{Device: "ncs2", Kind: repro.LinkDrop, At: warmup + 6*time.Second},
	}}

	for _, heal := range []bool{false, true} {
		rc := repro.RecoveryConfig{Timeout: 2 * time.Second, Recover: heal, MaxAttempts: 3}
		label := "fail-stop (failed sticks abandoned)"
		if heal {
			label = "self-healing (reboot-priced recovery + redelivery)"
		}
		sess, err := repro.NewSession(
			repro.WithImages(images),
			repro.WithVPUs(4),
			repro.WithNetwork(net),
			repro.WithBlob(blob),
			repro.WithArrivals(repro.DelayedArrivals(repro.PoissonArrivals(25), warmup)),
			repro.WithSLO(slo),
			repro.WithFaults(plan),
			repro.WithRecovery(rc),
		)
		if err != nil {
			log.Fatal(err)
		}
		report, runErr := sess.Run()
		fmt.Printf("── %s ──\n%s", label, report)
		if runErr != nil {
			// Fail-stop abandonment surfaces as a run error by design;
			// the report above still carries the degraded measurement.
			fmt.Printf("run error (expected under fail-stop): %v\n", runErr)
		}
		fmt.Println()
	}
	fmt.Println("same arrivals, same faults: fail-stop loses two of four sticks and the")
	fmt.Println("survivors drown; recovery pays ~3s per outage (detection + reboot) and")
	fmt.Println("redelivers the in-flight items, so goodput and uptime hold")
}

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
