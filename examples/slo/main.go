// SLO-aware serving: the same heterogeneous session run with and
// without its serving defenses, below and past the saturation knee.
//
// PR 2's serving example showed that past the knee an open-loop queue
// grows without bound and tail latency diverges. This walkthrough
// shows the two levers that manage it: adaptive batching
// (WithAdaptiveBatching), where the CPU group's batch size tracks the
// backlog so under light load it stops paying full-batch assembly
// latency; and bounded admission (WithAdmission + WithSLO), where a
// bounded ingress sheds what the devices cannot serve in time, so the
// requests that are served still meet the SLO — goodput degrades to
// the capacity ratio instead of collapsing toward zero.
//
//	go run ./examples/slo
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
)

const defaultImages = 400

// warmup skips the VPU firmware boot (~1.7 s simulated) so offered
// load meets a ready service.
const warmup = 2 * time.Second

// slo is the per-request deadline: arrival to completion.
const slo = 400 * time.Millisecond

func main() {
	log.SetFlags(0)
	images := imagesFromEnv(defaultImages)

	// One network and one compiled blob, shared by every session.
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	// ~83 img/s combined capacity (CPU batch-8 ≈ 44, 4 VPUs ≈ 39):
	// 40/s sits below the knee, 110/s far past it.
	for _, rate := range []float64{40, 110} {
		for _, defended := range []bool{false, true} {
			opts := []repro.SessionOption{
				repro.WithImages(images),
				repro.WithCPU(8),
				repro.WithVPUs(4),
				repro.WithNetwork(net),
				repro.WithBlob(blob),
				repro.WithArrivals(repro.DelayedArrivals(repro.PoissonArrivals(rate), warmup)),
				repro.WithRouting(repro.RouteLatency),
				repro.WithSLO(slo),
			}
			label := "baseline (fixed batch, unbounded ingress)"
			if defended {
				label = "slo-aware (adaptive batch, bounded ingress)"
				opts = append(opts,
					repro.WithAdaptiveBatching(slo/8),
					repro.WithAdmission(16, repro.ShedNewest),
				)
			}
			sess, err := repro.NewSession(opts...)
			if err != nil {
				log.Fatal(err)
			}
			report, err := sess.Run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("── %.0f img/s offered, %s ──\n%s\n", rate, label, report)
		}
	}
	fmt.Println("below the knee, adaptive batching removes full-batch assembly latency;")
	fmt.Println("past it, bounded admission sheds the overload so served requests still")
	fmt.Println("meet the SLO — goodput holds near capacity/offered instead of collapsing")
}

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
