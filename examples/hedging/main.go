// Hedging: the same serving session run through the same straggler
// incident — one stick slowed 10x mid-run — without and with
// speculative hedged requests.
//
// A slowdown is the nastiest tail fault: the device still answers, so
// the health monitor (which watches for completion timeouts) sees
// nothing to heal, and every item routed to the straggler pays its
// inflated service time. Hedging attacks it directly: an item in
// flight longer than the trigger is duplicated onto a different
// healthy stick, the first completion wins, and the loser is
// withdrawn from its queue (free) or discarded on completion (the
// waste the report accounts). Both runs face the identical Poisson
// arrivals and the identical fault instants, so the p99 gap is
// attributable to hedging alone — and a third run with trigger=∞
// (repro.HedgeNever) demonstrates that arming hedging without firing
// it reproduces the baseline bit for bit.
//
//	go run ./examples/hedging
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
)

const defaultImages = 600

// warmup skips the sequential 4-stick setup (~4.2 s simulated) so the
// straggler window lands mid-steady-state.
const warmup = 5 * time.Second

// slo is the per-request deadline: arrival to completion.
const slo = 450 * time.Millisecond

// trigger duplicates any item in flight longer than this (~3x the
// healthy per-item service time) onto another stick.
const trigger = 300 * time.Millisecond

func main() {
	log.SetFlags(0)
	images := imagesFromEnv(defaultImages)

	// One network and one compiled blob, shared by all sessions.
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	// The scenario: ncs1 turns straggler for a third of the run.
	plan := repro.FaultPlan{Events: []repro.FaultEvent{
		{Device: "ncs1", Kind: repro.Slowdown, At: warmup + 2*time.Second,
			Factor: 10, Duration: 6 * time.Second},
	}}

	variants := []struct {
		label string
		hedge repro.HedgeConfig
	}{
		{"no hedging (straggler dominates p99)", repro.HedgeConfig{}},
		{"hedging armed, trigger=∞ (must match the baseline bit for bit)",
			repro.HedgeConfig{Trigger: repro.HedgeNever}},
		{fmt.Sprintf("hedged requests (trigger %v, 15%% budget)", trigger),
			repro.HedgeConfig{Trigger: trigger, Budget: 0.15}},
	}
	for _, v := range variants {
		sess, err := repro.NewSession(
			repro.WithImages(images),
			repro.WithVPUs(4),
			repro.WithNetwork(net),
			repro.WithBlob(blob),
			repro.WithArrivals(repro.DelayedArrivals(repro.PoissonArrivals(25), warmup)),
			repro.WithSLO(slo),
			repro.WithFaults(plan),
			repro.WithRecovery(repro.DefaultRecoveryConfig()),
			repro.WithHedging(v.hedge),
		)
		if err != nil {
			log.Fatal(err)
		}
		report, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── %s ──\n%s\n", v.label, report)
	}
	fmt.Println("same arrivals, same straggler: the duplicate answers in one healthy")
	fmt.Println("service time while the slowed stick grinds, so p99 falls back toward")
	fmt.Println("the healthy baseline at the cost of the wasted duplicate completions")
}

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
