// Powerstudy: the paper's §V analysis — Eq. (1) images-per-Watt for
// the CPU, GPU and multi-VPU configurations, plus the simulated energy
// meter reading the paper leaves to future work ("actual power
// measurements would be required ... the TDP can be far from the real
// power draws per device").
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/power"
)

const images = 400

func main() {
	log.SetFlags(0)

	net := repro.NewGoogLeNet(repro.Seed(1))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultDatasetConfig()
	cfg.Images = images
	ds, err := repro.NewDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GoogLeNet inference, throughput per Watt (Eq. 1, batch 8 / 8 sticks)")
	fmt.Printf("%-12s %-12s %-10s %-12s\n", "target", "img/s", "TDP (W)", "img/W")

	// CPU at batch 8.
	cpu, err := repro.NewCPUTarget(net, 8, false, repro.Seed(2))
	if err != nil {
		log.Fatal(err)
	}
	cpuIPS := runBatch(cpu, ds)
	fmt.Printf("%-12s %-12.1f %-10.1f %-12.2f\n", "CPU", cpuIPS, power.CPUTDPWatts,
		power.ImagesPerWatt(cpuIPS, power.CPUTDPWatts))

	// GPU at batch 8.
	gpu, err := repro.NewGPUTarget(net, 8, false, repro.Seed(2))
	if err != nil {
		log.Fatal(err)
	}
	gpuIPS := runBatch(gpu, ds)
	fmt.Printf("%-12s %-12.1f %-10.1f %-12.2f\n", "GPU", gpuIPS, power.GPUTDPWatts,
		power.ImagesPerWatt(gpuIPS, power.GPUTDPWatts))

	// 8 sticks, with the energy meter read out afterwards.
	env := repro.NewEnv()
	sticks, err := repro.NewNCSTestbed(env, 8, repro.Seed(2))
	if err != nil {
		log.Fatal(err)
	}
	target, err := repro.NewVPUTarget(sticks, blob, repro.DefaultVPUOptions())
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		log.Fatal(err)
	}
	col := repro.NewCollector(false)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		log.Fatal(job.Err)
	}
	vpuTDP := target.TDPWatts()
	fmt.Printf("%-12s %-12.1f %-10.1f %-12.2f\n", "VPU x8", job.Throughput(), vpuTDP,
		power.ImagesPerWatt(job.Throughput(), vpuTDP))

	// Beyond the paper: integrate the sticks' simulated power states
	// over the run (boot, idle, SHAVE-active) instead of assuming TDP.
	var joules, avg float64
	for _, d := range sticks {
		joules += d.Meter().EnergyJoules(env.Now())
		avg += d.Meter().AveragePowerWatts(env.Now())
	}
	fmt.Printf("\nmeasured (simulated) energy across 8 sticks: %.1f J over %v\n", joules, env.Now())
	fmt.Printf("average draw %.2f W total (%.2f W per stick) vs %.0f W TDP assumption\n",
		avg, avg/8, vpuTDP)
	fmt.Printf("metered img/W: %.2f (TDP-based: %.2f)\n",
		float64(job.Images)/joules, power.ImagesPerWatt(job.Throughput(), vpuTDP))
}

func runBatch(t repro.Target, ds *repro.Dataset) float64 {
	src, err := repro.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		log.Fatal(err)
	}
	env := repro.NewEnv()
	col := repro.NewCollector(false)
	job := t.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		log.Fatal(job.Err)
	}
	return job.Throughput()
}
