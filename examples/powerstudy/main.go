// Powerstudy: the paper's §V analysis — Eq. (1) images-per-Watt for
// the CPU, GPU and multi-VPU configurations, plus the simulated
// energy meter reading the paper leaves to future work ("actual power
// measurements would be required ... the TDP can be far from the real
// power draws per device"). Each configuration is one single-group
// session; the report carries both the TDP-based img/W and the
// metered energy.
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro"
)

var images = imagesFromEnv(400)

// imagesFromEnv returns the NCSW_EXAMPLE_IMAGES override (the smoke
// test runs every example at tiny scale) or def.
func imagesFromEnv(def int) int {
	if s := os.Getenv("NCSW_EXAMPLE_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func main() {
	log.SetFlags(0)

	// One network and one compiled blob, shared by every session.
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GoogLeNet inference, throughput per Watt (Eq. 1, batch 8 / 8 sticks)")
	fmt.Printf("%-12s %-12s %-10s %-12s\n", "target", "img/s", "TDP (W)", "img/W")

	cpu := run(net, blob, repro.WithCPU(8))
	fmt.Printf("%-12s %-12.1f %-10.1f %-12.2f\n", "CPU", cpu.Throughput, cpu.TDPWatts, cpu.ImagesPerWatt)

	gpu := run(net, blob, repro.WithGPU(8))
	fmt.Printf("%-12s %-12.1f %-10.1f %-12.2f\n", "GPU", gpu.Throughput, gpu.TDPWatts, gpu.ImagesPerWatt)

	vpu := run(net, blob, repro.WithVPUs(8))
	fmt.Printf("%-12s %-12.1f %-10.1f %-12.2f\n", "VPU x8", vpu.Throughput, vpu.TDPWatts, vpu.ImagesPerWatt)

	// Beyond the paper: the sticks' simulated power states (boot,
	// idle, SHAVE-active) integrated over the run instead of the TDP
	// assumption — straight off the session report.
	fmt.Printf("\nmeasured (simulated) energy across 8 sticks: %.1f J\n", vpu.EnergyJoules)
	fmt.Printf("average draw %.2f W total (%.2f W per stick) vs %.0f W TDP assumption\n",
		vpu.AvgPowerWatts, vpu.AvgPowerWatts/8, vpu.TDPWatts)
	fmt.Printf("metered img/W: %.2f (TDP-based: %.2f)\n",
		float64(vpu.Images)/vpu.EnergyJoules, vpu.ImagesPerWatt)
}

// run executes one pure-performance session and returns its only
// group report.
func run(net *repro.Graph, blob []byte, group repro.SessionOption) repro.TargetReport {
	sess, err := repro.NewSession(group,
		repro.WithImages(images),
		repro.WithNetwork(net),
		repro.WithBlob(blob),
		repro.WithSeed(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	return report.Targets[0]
}
