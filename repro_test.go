package repro

import (
	"strings"
	"testing"
)

// TestFacadeListing1 exercises the public API end to end: the doc
// comment's Listing-1-style session must actually work.
func TestFacadeListing1(t *testing.T) {
	env := NewEnv()
	devices, err := NewNCSTestbed(env, 1, Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	net := NewMicroGoogLeNet(DefaultMicroConfig(), Seed(42))
	blob, err := CompileGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(DefaultDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := ds.Preprocessed(0)

	var got *NCSResult
	env.Process("host", func(p *Proc) {
		dev := devices[0]
		if err := dev.Open(p); err != nil {
			t.Error(err)
			return
		}
		graph, err := dev.AllocateGraph(p, blob, GraphOptions{Functional: true})
		if err != nil {
			t.Error(err)
			return
		}
		if err := graph.LoadTensor(p, img, "first"); err != nil {
			t.Error(err)
			return
		}
		res, err := graph.GetResult(p)
		if err != nil {
			t.Error(err)
			return
		}
		got = &res
		if err := dev.Close(p); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if got == nil || got.Output == nil {
		t.Fatal("no result")
	}
	if got.UserParam.(string) != "first" {
		t.Error("userParam lost")
	}
	if got.Output.Elems() != 100 {
		t.Errorf("output size = %d", got.Output.Elems())
	}
}

// TestFacadeNCSwRun drives the framework layer through the facade:
// a CPU target and a dataset source.
func TestFacadeNCSwRun(t *testing.T) {
	net := NewGoogLeNet(Seed(1))
	cpu, err := NewCPUTarget(net, 8, false, Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDatasetConfig()
	cfg.Images = 64
	ds, err := NewDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(ds, 0, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	col := NewCollector(false)
	job := cpu.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.Images != 64 || col.N != 64 {
		t.Errorf("images = %d / %d", job.Images, col.N)
	}
	if ips := job.Throughput(); ips < 40 || ips > 48 {
		t.Errorf("CPU throughput = %.1f img/s, expected ~44", ips)
	}
}

func TestFacadeGPUTarget(t *testing.T) {
	net := NewGoogLeNet(Seed(1))
	gpu, err := NewGPUTarget(net, 8, false, Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if gpu.TDPWatts() != 80 {
		t.Errorf("GPU TDP = %g", gpu.TDPWatts())
	}
}

func TestFacadeGraphRoundTrip(t *testing.T) {
	net := NewMicroGoogLeNet(DefaultMicroConfig(), Seed(3))
	blob, err := CompileGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseGraph(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != net.Len() {
		t.Error("round trip changed layer count")
	}
	if _, err := ParseGraph([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(ExperimentIDs()) == 0 {
		t.Fatal("no experiments")
	}
	h, err := NewBenchmarks(QuickBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.Config().Subsets != 5 {
		t.Error("quick config subsets")
	}
	if _, err := NewBenchmarks(BenchConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestAbout(t *testing.T) {
	if !strings.Contains(About(), Version) {
		t.Error("About missing version")
	}
	if !strings.Contains(About(), "Vision Processing Unit") {
		t.Error("About missing paper title")
	}
}

func TestFacadeConstants(t *testing.T) {
	if FP32.String() != "FP32" || FP16.String() != "FP16" || FP16Strict.String() != "FP16-strict" {
		t.Error("precision constants")
	}
	if RoundRobin.String() != "round-robin" || Dynamic.String() != "dynamic" {
		t.Error("scheduling constants")
	}
	if DefaultNCSConfig().FIFODepth != 2 {
		t.Error("NCS config")
	}
	if DefaultVPUConfig().NumSHAVEs != 12 {
		t.Error("VPU config")
	}
	if NewTimeline() == nil {
		t.Error("timeline")
	}
	if NewTensor(2, 2).Elems() != 4 {
		t.Error("tensor")
	}
	if DefaultVPUOptions().Scheduling != RoundRobin {
		t.Error("vpu options")
	}
	if DefaultBenchConfig().ImagesPerSubset != 10000 {
		t.Error("bench config")
	}
}
